package protocol

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/ioa"
)

// NewABP returns the alternating-bit protocol: a sliding window of size
// one with sequence numbers modulo two. It is correct over FIFO physical
// channels (given correct initialization), message-independent, crashing,
// 1-bounded, and has the four-element header set {data/0, data/1, ack/0,
// ack/1} — making it a target of both Theorem 7.5 (crashes) and, over
// non-FIFO channels, Theorem 8.5 (bounded headers).
func NewABP() core.Protocol {
	return core.Protocol{
		Name: "abp",
		T:    &abpTransmitter{},
		R:    &abpReceiver{},
		Props: core.Properties{
			MessageIndependent: true,
			PayloadOpaque:      true,
			Crashing:           true,
			Headers: []ioa.Header{
				DataHeader(0), DataHeader(1), AckHeader(0), AckHeader(1),
			},
			KBound:       1,
			RequiresFIFO: true,
		},
	}
}

// abpTState is the alternating-bit transmitter state. The zero value is
// the unique start state, as the crashing property requires.
type abpTState struct {
	awake bool
	bit   int // sequence bit of queue[0]
	queue []ioa.Message
}

var (
	_ ioa.EquivState          = abpTState{}
	_ ioa.AppendFingerprinter = abpTState{}
)

func (s abpTState) Fingerprint() string { return string(s.AppendFingerprint(nil)) }

func (s abpTState) AppendFingerprint(dst []byte) []byte {
	dst = append(dst, "abpT{awake="...)
	dst = strconv.AppendBool(dst, s.awake)
	dst = append(dst, " bit="...)
	dst = appendInt(dst, s.bit)
	dst = append(dst, " q="...)
	dst = appendMsgs(dst, s.queue)
	return append(dst, '}')
}

func (s abpTState) EquivFingerprint() string {
	return fmt.Sprintf("abpT{awake=%t bit=%d q=%s}", s.awake, s.bit, eqMsgs(s.queue))
}

func (s abpTState) clone() abpTState {
	s.queue = cloneMsgs(s.queue)
	return s
}

// abpTransmitter is A^t of the alternating-bit protocol.
type abpTransmitter struct{}

var _ ioa.Automaton = (*abpTransmitter)(nil)

func (*abpTransmitter) Name() string { return "abp.T" }

func (*abpTransmitter) Signature() ioa.Signature { return core.TransmitterSignature() }

func (*abpTransmitter) Start() ioa.State { return abpTState{} }

// wantPkt returns the single packet the transmitter is willing to send.
func (s abpTState) wantPkt() (ioa.Packet, bool) {
	if !s.awake || len(s.queue) == 0 {
		return ioa.Packet{}, false
	}
	return dataPkt(DataHeader(s.bit), s.queue[0]), true
}

func (t *abpTransmitter) Step(st ioa.State, a ioa.Action) (ioa.State, error) {
	s, ok := st.(abpTState)
	if !ok {
		return nil, errBadState(t.Name(), st)
	}
	switch {
	case a.Kind == ioa.KindWake && a.Dir == ioa.TR:
		s = s.clone()
		s.awake = true
		return s, nil
	case a.Kind == ioa.KindFail && a.Dir == ioa.TR:
		s = s.clone()
		s.awake = false
		return s, nil
	case a.Kind == ioa.KindCrash && a.Dir == ioa.TR:
		// Crashing: revert to the unique start state (Section 5.3.2).
		return abpTState{}, nil
	case a.Kind == ioa.KindSendMsg && a.Dir == ioa.TR:
		s = s.clone()
		s.queue = append(s.queue, a.Msg)
		return s, nil
	case a.Kind == ioa.KindReceivePkt && a.Dir == ioa.RT:
		b, isAck := parse1(a.Pkt.Header, "ack")
		if isAck && b == s.bit && len(s.queue) > 0 {
			s = s.clone()
			s.queue = s.queue[1:]
			s.bit = 1 - s.bit
			return s, nil
		}
		return s, nil // stale or foreign ack: ignore
	case a.Kind == ioa.KindSendPkt && a.Dir == ioa.TR:
		want, sending := s.wantPkt()
		if !sending || !sendPktEnabled(a.Pkt, want) {
			return nil, errNotEnabled(t.Name(), a)
		}
		return s, nil // retransmission-ready: sending does not change state
	default:
		return nil, errNotInSignature(t.Name(), a)
	}
}

func (t *abpTransmitter) Enabled(st ioa.State) []ioa.Action {
	s, ok := st.(abpTState)
	if !ok {
		return nil
	}
	if pkt, sending := s.wantPkt(); sending {
		return []ioa.Action{ioa.SendPkt(ioa.TR, pkt)}
	}
	return nil
}

func (*abpTransmitter) ClassOf(ioa.Action) ioa.Class { return ClassXmit }

func (*abpTransmitter) Classes() []ioa.Class { return []ioa.Class{ClassXmit} }

// abpRState is the alternating-bit receiver state. The zero value is the
// unique start state.
type abpRState struct {
	awake   bool
	expect  int
	acks    []ioa.Header // one queued ack per received data packet
	pending []ioa.Message
}

var (
	_ ioa.EquivState          = abpRState{}
	_ ioa.AppendFingerprinter = abpRState{}
)

func (s abpRState) Fingerprint() string { return string(s.AppendFingerprint(nil)) }

func (s abpRState) AppendFingerprint(dst []byte) []byte {
	return appendRcvrFP(dst, "abpR", s.awake, s.expect, s.acks, s.pending)
}

func (s abpRState) EquivFingerprint() string {
	return fmt.Sprintf("abpR{awake=%t exp=%d acks=%s pend=%s}",
		s.awake, s.expect, fpHeaders(s.acks), eqMsgs(s.pending))
}

func (s abpRState) clone() abpRState {
	s.acks = cloneHeaders(s.acks)
	s.pending = cloneMsgs(s.pending)
	return s
}

// abpReceiver is A^r of the alternating-bit protocol.
type abpReceiver struct{}

var _ ioa.Automaton = (*abpReceiver)(nil)

func (*abpReceiver) Name() string { return "abp.R" }

func (*abpReceiver) Signature() ioa.Signature { return core.ReceiverSignature() }

func (*abpReceiver) Start() ioa.State { return abpRState{} }

func (r *abpReceiver) Step(st ioa.State, a ioa.Action) (ioa.State, error) {
	s, ok := st.(abpRState)
	if !ok {
		return nil, errBadState(r.Name(), st)
	}
	switch {
	case a.Kind == ioa.KindWake && a.Dir == ioa.RT:
		s = s.clone()
		s.awake = true
		return s, nil
	case a.Kind == ioa.KindFail && a.Dir == ioa.RT:
		s = s.clone()
		s.awake = false
		return s, nil
	case a.Kind == ioa.KindCrash && a.Dir == ioa.RT:
		return abpRState{}, nil
	case a.Kind == ioa.KindReceivePkt && a.Dir == ioa.TR:
		b, isData := parse1(a.Pkt.Header, "data")
		if !isData {
			return s, nil
		}
		s = s.clone()
		if b == s.expect {
			s.pending = append(s.pending, a.Pkt.Payload)
			s.expect = 1 - s.expect
		}
		s.acks = append(s.acks, AckHeader(b))
		return s, nil
	case a.Kind == ioa.KindSendPkt && a.Dir == ioa.RT:
		if !s.awake || len(s.acks) == 0 || !sendPktEnabled(a.Pkt, ctrlPkt(s.acks[0])) {
			return nil, errNotEnabled(r.Name(), a)
		}
		s = s.clone()
		s.acks = s.acks[1:]
		return s, nil
	case a.Kind == ioa.KindReceiveMsg && a.Dir == ioa.TR:
		if len(s.pending) == 0 || s.pending[0] != a.Msg {
			return nil, errNotEnabled(r.Name(), a)
		}
		s = s.clone()
		s.pending = s.pending[1:]
		return s, nil
	default:
		return nil, errNotInSignature(r.Name(), a)
	}
}

func (r *abpReceiver) Enabled(st ioa.State) []ioa.Action {
	s, ok := st.(abpRState)
	if !ok {
		return nil
	}
	var out []ioa.Action
	if len(s.pending) > 0 {
		out = append(out, ioa.ReceiveMsg(ioa.TR, s.pending[0]))
	}
	if s.awake && len(s.acks) > 0 {
		out = append(out, ioa.SendPkt(ioa.RT, ctrlPkt(s.acks[0])))
	}
	return out
}

func (*abpReceiver) ClassOf(a ioa.Action) ioa.Class {
	if a.Kind == ioa.KindReceiveMsg {
		return ClassDeliver
	}
	return ClassAck
}

func (*abpReceiver) Classes() []ioa.Class { return []ioa.Class{ClassDeliver, ClassAck} }
