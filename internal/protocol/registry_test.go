package protocol

import "testing"

func TestByName(t *testing.T) {
	tests := []struct {
		name string
		n, w int
		ok   bool
		want string
	}{
		{"abp", 0, 0, true, "abp"},
		{"gbn", 8, 3, true, "gbn(n=8,w=3)"},
		{"gbn", 1, 1, false, ""},
		{"sr", 8, 4, true, "sr(n=8,w=4)"},
		{"sr", 8, 5, false, ""},
		{"frag", 4, 2, true, "frag(n=4,f=2)"},
		{"frag", 1, 1, false, ""},
		{"hs", 0, 0, true, "handshake"},
		{"handshake", 0, 0, true, "handshake"},
		{"stenning", 0, 0, true, "stenning"},
		{"nv", 0, 0, true, "nonvolatile"},
		{"bs", 0, 0, true, "nonvolatile"},
		{"bogus", 0, 0, false, ""},
	}
	for _, tt := range tests {
		p, err := ByName(tt.name, tt.n, tt.w)
		if (err == nil) != tt.ok {
			t.Errorf("ByName(%q,%d,%d) err = %v, want ok=%v", tt.name, tt.n, tt.w, err, tt.ok)
			continue
		}
		if err == nil && p.Name != tt.want {
			t.Errorf("ByName(%q,%d,%d) = %q, want %q", tt.name, tt.n, tt.w, p.Name, tt.want)
		}
		if err == nil {
			if vErr := p.Validate(); vErr != nil {
				t.Errorf("registry produced an invalid protocol %q: %v", p.Name, vErr)
			}
		}
	}
	if len(Names()) < 7 {
		t.Errorf("Names() = %v", Names())
	}
}
