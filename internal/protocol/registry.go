package protocol

import (
	"fmt"

	"repro/internal/core"
)

// ByName builds a protocol from a command-line style specification. Known
// names: "abp", "gbn" (uses n and w), "sr" (selective repeat; n and w),
// "frag" (fragmenting; n and w, with w read as the fragment count),
// "hs" (alternating bit with a handshake), "stenning", and "nv" (the
// non-volatile Baratz–Segall-style protocol). The deliberately broken
// "abp-stuck" (see NewStuckABP) is also reachable here for harness
// self-tests, but is excluded from Names. It returns an error for unknown
// names or invalid parameters.
func ByName(name string, n, w int) (core.Protocol, error) {
	switch name {
	case "abp":
		return NewABP(), nil
	case "abp-stuck":
		return NewStuckABP(), nil
	case "gbn":
		if n < 2 || w < 1 || w > n-1 {
			return core.Protocol{}, fmt.Errorf("protocol: gbn needs n ≥ 2 and 1 ≤ w ≤ n-1, got n=%d w=%d", n, w)
		}
		return NewGoBackN(n, w), nil
	case "sr":
		if n < 2 || w < 1 || w > n/2 {
			return core.Protocol{}, fmt.Errorf("protocol: sr needs n ≥ 2 and 1 ≤ w ≤ n/2, got n=%d w=%d", n, w)
		}
		return NewSelectiveRepeat(n, w), nil
	case "frag":
		if n < 2 || w < 1 {
			return core.Protocol{}, fmt.Errorf("protocol: frag needs n ≥ 2 and f ≥ 1, got n=%d f=%d", n, w)
		}
		return NewFragmenting(n, w), nil
	case "hs", "handshake":
		return NewHandshake(), nil
	case "stenning":
		return NewStenning(), nil
	case "nv", "nonvolatile", "bs":
		return NewNonVolatile(), nil
	default:
		return core.Protocol{}, fmt.Errorf("protocol: unknown protocol %q (want one of %v)", name, Names())
	}
}

// Names lists the registry's protocol names for usage messages.
func Names() []string { return []string{"abp", "gbn", "sr", "frag", "hs", "stenning", "nv"} }
