package protocol

import (
	"sort"
	"strconv"

	"repro/internal/ioa"
)

// Canonical fingerprints for the payload-opaque protocols: structurally
// identical to the AppendFingerprint renderings, with payload tokens
// replaced by first-use canonical indices drawn from a shared ioa.Canon.
// Tokens are visited in structural order (queue position, sorted buffer
// keys), so two states with equal canonical fingerprints are related by a
// bijective payload renaming — for PayloadOpaque protocols an
// automorphism of the transition system.
//
// The fragmenting protocol gets no canonical fingerprints: it derives
// fragment tokens from message contents (see its Props comment), so the
// explorer never asks for them.

// appendMsgsCanon mirrors appendMsgs with canonical payload indices.
func appendMsgsCanon(dst []byte, ms []ioa.Message, c *ioa.Canon) []byte {
	dst = append(dst, '[')
	for i, m := range ms {
		if i > 0 {
			dst = append(dst, ' ')
		}
		dst = c.AppendMsg(dst, m)
	}
	return append(dst, ']')
}

// appendXmtrFPCanon mirrors appendXmtrFP with canonical payloads.
func appendXmtrFPCanon(dst []byte, tag string, awake bool, base int, queue []ioa.Message, c *ioa.Canon) []byte {
	dst = append(dst, tag...)
	dst = append(dst, "{awake="...)
	dst = strconv.AppendBool(dst, awake)
	dst = append(dst, " base="...)
	dst = appendInt(dst, base)
	dst = append(dst, " q="...)
	dst = appendMsgsCanon(dst, queue, c)
	return append(dst, '}')
}

// appendRcvrFPCanon mirrors appendRcvrFP with canonical payloads.
func appendRcvrFPCanon(dst []byte, tag string, awake bool, expect int, acks []ioa.Header, pending []ioa.Message, c *ioa.Canon) []byte {
	dst = append(dst, tag...)
	dst = append(dst, "{awake="...)
	dst = strconv.AppendBool(dst, awake)
	dst = append(dst, " exp="...)
	dst = appendInt(dst, expect)
	dst = append(dst, " acks="...)
	dst = appendHeaders(dst, acks)
	dst = append(dst, " pend="...)
	dst = appendMsgsCanon(dst, pending, c)
	return append(dst, '}')
}

// appendBufferCanon mirrors appendBuffer with canonical payloads. The
// traversal order is by integer key — structural, never token-dependent.
func appendBufferCanon(dst []byte, buf map[int]ioa.Message, c *ioa.Canon) []byte {
	keys := make([]int, 0, len(buf))
	for k := range buf {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	dst = append(dst, '{')
	for i, k := range keys {
		if i > 0 {
			dst = append(dst, ' ')
		}
		dst = appendInt(dst, k)
		dst = append(dst, ':')
		dst = c.AppendMsg(dst, buf[k])
	}
	return append(dst, '}')
}

var (
	_ ioa.CanonFingerprinter = abpTState{}
	_ ioa.CanonFingerprinter = abpRState{}
	_ ioa.CanonFingerprinter = gbnTState{}
	_ ioa.CanonFingerprinter = gbnRState{}
	_ ioa.CanonFingerprinter = srTState{}
	_ ioa.CanonFingerprinter = srRState{}
	_ ioa.CanonFingerprinter = hsTState{}
	_ ioa.CanonFingerprinter = hsRState{}
	_ ioa.CanonFingerprinter = stnTState{}
	_ ioa.CanonFingerprinter = stnRState{}
	_ ioa.CanonFingerprinter = nvTState{}
	_ ioa.CanonFingerprinter = nvRState{}
)

func (s abpTState) AppendCanonFingerprint(dst []byte, c *ioa.Canon) []byte {
	dst = append(dst, "abpT{awake="...)
	dst = strconv.AppendBool(dst, s.awake)
	dst = append(dst, " bit="...)
	dst = appendInt(dst, s.bit)
	dst = append(dst, " q="...)
	dst = appendMsgsCanon(dst, s.queue, c)
	return append(dst, '}')
}

func (s abpRState) AppendCanonFingerprint(dst []byte, c *ioa.Canon) []byte {
	return appendRcvrFPCanon(dst, "abpR", s.awake, s.expect, s.acks, s.pending, c)
}

func (s gbnTState) AppendCanonFingerprint(dst []byte, c *ioa.Canon) []byte {
	return appendXmtrFPCanon(dst, "gbnT", s.awake, s.base, s.queue, c)
}

func (s gbnRState) AppendCanonFingerprint(dst []byte, c *ioa.Canon) []byte {
	return appendRcvrFPCanon(dst, "gbnR", s.awake, s.expect, s.acks, s.pending, c)
}

func (s srTState) AppendCanonFingerprint(dst []byte, c *ioa.Canon) []byte {
	dst = append(dst, "srT{awake="...)
	dst = strconv.AppendBool(dst, s.awake)
	dst = append(dst, " base="...)
	dst = appendInt(dst, s.base)
	dst = append(dst, " q="...)
	dst = appendMsgsCanon(dst, s.queue, c)
	dst = append(dst, " acked="...)
	dst = appendBools(dst, s.acked)
	return append(dst, '}')
}

func (s srRState) AppendCanonFingerprint(dst []byte, c *ioa.Canon) []byte {
	dst = append(dst, "srR{awake="...)
	dst = strconv.AppendBool(dst, s.awake)
	dst = append(dst, " exp="...)
	dst = appendInt(dst, s.expect)
	dst = append(dst, " buf="...)
	dst = appendBufferCanon(dst, s.buffer, c)
	dst = append(dst, " acks="...)
	dst = appendHeaders(dst, s.acks)
	dst = append(dst, " pend="...)
	dst = appendMsgsCanon(dst, s.pending, c)
	return append(dst, '}')
}

func (s hsTState) AppendCanonFingerprint(dst []byte, c *ioa.Canon) []byte {
	dst = append(dst, "hsT{awake="...)
	dst = strconv.AppendBool(dst, s.awake)
	dst = append(dst, " conn="...)
	dst = strconv.AppendBool(dst, s.conn)
	dst = append(dst, " bit="...)
	dst = appendInt(dst, s.bit)
	dst = append(dst, " q="...)
	dst = appendMsgsCanon(dst, s.queue, c)
	return append(dst, '}')
}

func (s hsRState) AppendCanonFingerprint(dst []byte, c *ioa.Canon) []byte {
	dst = append(dst, "hsR{awake="...)
	dst = strconv.AppendBool(dst, s.awake)
	dst = append(dst, " conn="...)
	dst = strconv.AppendBool(dst, s.conn)
	dst = append(dst, " exp="...)
	dst = appendInt(dst, s.expect)
	dst = append(dst, " acks="...)
	dst = appendHeaders(dst, s.acks)
	dst = append(dst, " pend="...)
	dst = appendMsgsCanon(dst, s.pending, c)
	return append(dst, '}')
}

func (s stnTState) AppendCanonFingerprint(dst []byte, c *ioa.Canon) []byte {
	return appendXmtrFPCanon(dst, "stnT", s.awake, s.base, s.queue, c)
}

func (s stnRState) AppendCanonFingerprint(dst []byte, c *ioa.Canon) []byte {
	return appendRcvrFPCanon(dst, "stnR", s.awake, s.expect, s.acks, s.pending, c)
}

func (s nvTState) AppendCanonFingerprint(dst []byte, c *ioa.Canon) []byte {
	dst = append(dst, "nvT{e="...)
	dst = appendInt(dst, s.epoch)
	dst = append(dst, " awake="...)
	dst = strconv.AppendBool(dst, s.awake)
	dst = append(dst, " conn="...)
	dst = strconv.AppendBool(dst, s.conn)
	dst = append(dst, " base="...)
	dst = appendInt(dst, s.base)
	dst = append(dst, " q="...)
	dst = appendMsgsCanon(dst, s.queue, c)
	return append(dst, '}')
}

func (s nvRState) AppendCanonFingerprint(dst []byte, c *ioa.Canon) []byte {
	dst = append(dst, "nvR{e="...)
	dst = appendInt(dst, s.epoch)
	dst = append(dst, " hasE="...)
	dst = strconv.AppendBool(dst, s.hasE)
	dst = append(dst, " exp="...)
	dst = appendInt(dst, s.expect)
	dst = append(dst, " pend="...)
	dst = appendMsgsCanon(dst, s.pending, c)
	dst = append(dst, " awake="...)
	dst = strconv.AppendBool(dst, s.awake)
	dst = append(dst, " acks="...)
	dst = appendHeaders(dst, s.acks)
	return append(dst, '}')
}
