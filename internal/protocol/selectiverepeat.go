package protocol

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/ioa"
)

// NewSelectiveRepeat returns a Selective-Repeat ARQ protocol with sequence
// numbers modulo n and window size w (1 ≤ w ≤ n/2, the classic safety
// condition over FIFO channels): the receiver buffers out-of-order packets
// within its window and acknowledges each received sequence number
// individually, so a single loss does not force the whole window to be
// resent. Like Go-Back-N it has bounded headers {data/i, ack/i : 0 ≤ i <
// n} and is crashing and message-independent — so both impossibility
// adversaries defeat it (crashes over FIFO channels, reordering over
// non-FIFO ones) despite its extra sophistication.
//
// It panics on invalid parameters, which indicate a caller bug.
func NewSelectiveRepeat(n, w int) core.Protocol {
	if n < 2 || w < 1 || w > n/2 {
		panic(fmt.Sprintf("protocol: invalid Selective-Repeat parameters n=%d w=%d (need n ≥ 2, 1 ≤ w ≤ n/2)", n, w))
	}
	headers := make([]ioa.Header, 0, 2*n)
	for i := 0; i < n; i++ {
		headers = append(headers, DataHeader(i), AckHeader(i))
	}
	return core.Protocol{
		Name: fmt.Sprintf("sr(n=%d,w=%d)", n, w),
		T:    &srTransmitter{n: n, w: w},
		R:    &srReceiver{n: n, w: w},
		Props: core.Properties{
			MessageIndependent: true,
			PayloadOpaque:      true,
			Crashing:           true,
			Headers:            headers,
			KBound:             1,
			RequiresFIFO:       true,
		},
	}
}

// srTransmitter is A^t of Selective Repeat.
type srTransmitter struct {
	n, w int
}

// srTState is the Selective-Repeat transmitter state: base is the absolute
// sequence of queue[0]; acked[i] records that queue[i] (absolute base+i)
// has been individually acknowledged but not yet slid past.
type srTState struct {
	awake bool
	base  int
	queue []ioa.Message
	acked []bool // parallel to queue[:windowSize]
}

var (
	_ ioa.EquivState          = srTState{}
	_ ioa.AppendFingerprinter = srTState{}
)

func fpBools(bs []bool) string {
	parts := make([]string, len(bs))
	for i, b := range bs {
		if b {
			parts[i] = "1"
		} else {
			parts[i] = "0"
		}
	}
	return "[" + strings.Join(parts, "") + "]"
}

func (s srTState) Fingerprint() string { return string(s.AppendFingerprint(nil)) }

func (s srTState) AppendFingerprint(dst []byte) []byte {
	dst = append(dst, "srT{awake="...)
	dst = strconv.AppendBool(dst, s.awake)
	dst = append(dst, " base="...)
	dst = appendInt(dst, s.base)
	dst = append(dst, " q="...)
	dst = appendMsgs(dst, s.queue)
	dst = append(dst, " acked="...)
	dst = appendBools(dst, s.acked)
	return append(dst, '}')
}

func (s srTState) EquivFingerprint() string {
	return fmt.Sprintf("srT{awake=%t base=%d q=%s acked=%s}", s.awake, s.base, eqMsgs(s.queue), fpBools(s.acked))
}

func (s srTState) clone() srTState {
	s.queue = cloneMsgs(s.queue)
	s.acked = append([]bool(nil), s.acked...)
	return s
}

var _ ioa.Automaton = (*srTransmitter)(nil)

func (t *srTransmitter) Name() string { return fmt.Sprintf("sr(%d,%d).T", t.n, t.w) }

func (*srTransmitter) Signature() ioa.Signature { return core.TransmitterSignature() }

func (*srTransmitter) Start() ioa.State { return srTState{} }

func (t *srTransmitter) windowSize(s srTState) int {
	if len(s.queue) < t.w {
		return len(s.queue)
	}
	return t.w
}

// ackedAt reports whether window slot i is acknowledged.
func ackedAt(s srTState, i int) bool { return i < len(s.acked) && s.acked[i] }

func (t *srTransmitter) Step(st ioa.State, a ioa.Action) (ioa.State, error) {
	s, ok := st.(srTState)
	if !ok {
		return nil, errBadState(t.Name(), st)
	}
	switch {
	case a.Kind == ioa.KindWake && a.Dir == ioa.TR:
		s = s.clone()
		s.awake = true
		return s, nil
	case a.Kind == ioa.KindFail && a.Dir == ioa.TR:
		s = s.clone()
		s.awake = false
		return s, nil
	case a.Kind == ioa.KindCrash && a.Dir == ioa.TR:
		return srTState{}, nil
	case a.Kind == ioa.KindSendMsg && a.Dir == ioa.TR:
		s = s.clone()
		s.queue = append(s.queue, a.Msg)
		return s, nil
	case a.Kind == ioa.KindReceivePkt && a.Dir == ioa.RT:
		h, isAck := parse1(a.Pkt.Header, "ack")
		if !isAck {
			return s, nil
		}
		// An individual ack for the window slot whose sequence is ≡ h.
		diff := ((h-s.base)%t.n + t.n) % t.n
		if diff >= t.windowSize(s) || ackedAt(s, diff) {
			return s, nil // stale or duplicate ack
		}
		s = s.clone()
		for len(s.acked) <= diff {
			s.acked = append(s.acked, false)
		}
		s.acked[diff] = true
		// Slide the window over the acknowledged prefix.
		slide := 0
		for slide < len(s.acked) && s.acked[slide] {
			slide++
		}
		if slide > 0 {
			s.queue = s.queue[slide:]
			s.acked = s.acked[slide:]
			s.base += slide
		}
		return s, nil
	case a.Kind == ioa.KindSendPkt && a.Dir == ioa.TR:
		if s.awake {
			for i := 0; i < t.windowSize(s); i++ {
				if ackedAt(s, i) {
					continue
				}
				want := dataPkt(DataHeader((s.base+i)%t.n), s.queue[i])
				if sendPktEnabled(a.Pkt, want) {
					return s, nil
				}
			}
		}
		return nil, errNotEnabled(t.Name(), a)
	default:
		return nil, errNotInSignature(t.Name(), a)
	}
}

func (t *srTransmitter) Enabled(st ioa.State) []ioa.Action {
	s, ok := st.(srTState)
	if !ok || !s.awake {
		return nil
	}
	var out []ioa.Action
	for i := 0; i < t.windowSize(s); i++ {
		if ackedAt(s, i) {
			continue // only unacknowledged slots are retransmitted
		}
		out = append(out, ioa.SendPkt(ioa.TR, dataPkt(DataHeader((s.base+i)%t.n), s.queue[i])))
	}
	return out
}

func (*srTransmitter) ClassOf(ioa.Action) ioa.Class { return ClassXmit }

func (*srTransmitter) Classes() []ioa.Class { return []ioa.Class{ClassXmit} }

// srReceiver is A^r of Selective Repeat.
type srReceiver struct {
	n, w int
}

// srRState is the Selective-Repeat receiver state: expect is the absolute
// next in-order sequence; buffer holds out-of-order messages keyed by
// absolute sequence within [expect, expect+w).
type srRState struct {
	awake   bool
	expect  int
	buffer  map[int]ioa.Message
	acks    []ioa.Header
	pending []ioa.Message
}

var (
	_ ioa.EquivState          = srRState{}
	_ ioa.AppendFingerprinter = srRState{}
)

func fpBuffer(buf map[int]ioa.Message, exact bool) string {
	keys := make([]int, 0, len(buf))
	for k := range buf {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		if exact {
			parts[i] = fmt.Sprintf("%d:%q", k, string(buf[k]))
		} else {
			parts[i] = fmt.Sprintf("%d:·", k)
		}
	}
	return "{" + strings.Join(parts, " ") + "}"
}

func (s srRState) Fingerprint() string { return string(s.AppendFingerprint(nil)) }

func (s srRState) AppendFingerprint(dst []byte) []byte {
	dst = append(dst, "srR{awake="...)
	dst = strconv.AppendBool(dst, s.awake)
	dst = append(dst, " exp="...)
	dst = appendInt(dst, s.expect)
	dst = append(dst, " buf="...)
	dst = appendBuffer(dst, s.buffer)
	dst = append(dst, " acks="...)
	dst = appendHeaders(dst, s.acks)
	dst = append(dst, " pend="...)
	dst = appendMsgs(dst, s.pending)
	return append(dst, '}')
}

// appendBuffer appends fpBuffer's exact rendering to dst. The sorted key
// slice is the one unavoidable allocation; receiver buffers hold at most a
// window of entries.
func appendBuffer(dst []byte, buf map[int]ioa.Message) []byte {
	keys := make([]int, 0, len(buf))
	for k := range buf {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	dst = append(dst, '{')
	for i, k := range keys {
		if i > 0 {
			dst = append(dst, ' ')
		}
		dst = appendInt(dst, k)
		dst = append(dst, ':')
		dst = strconv.AppendQuote(dst, string(buf[k]))
	}
	return append(dst, '}')
}

func (s srRState) EquivFingerprint() string {
	return fmt.Sprintf("srR{awake=%t exp=%d buf=%s acks=%s pend=%s}",
		s.awake, s.expect, fpBuffer(s.buffer, false), fpHeaders(s.acks), eqMsgs(s.pending))
}

func (s srRState) clone() srRState {
	buf := make(map[int]ioa.Message, len(s.buffer))
	for k, v := range s.buffer {
		buf[k] = v
	}
	s.buffer = buf
	s.acks = cloneHeaders(s.acks)
	s.pending = cloneMsgs(s.pending)
	return s
}

var _ ioa.Automaton = (*srReceiver)(nil)

func (r *srReceiver) Name() string { return fmt.Sprintf("sr(%d,%d).R", r.n, r.w) }

func (*srReceiver) Signature() ioa.Signature { return core.ReceiverSignature() }

func (*srReceiver) Start() ioa.State { return srRState{} }

func (r *srReceiver) Step(st ioa.State, a ioa.Action) (ioa.State, error) {
	s, ok := st.(srRState)
	if !ok {
		return nil, errBadState(r.Name(), st)
	}
	switch {
	case a.Kind == ioa.KindWake && a.Dir == ioa.RT:
		s = s.clone()
		s.awake = true
		return s, nil
	case a.Kind == ioa.KindFail && a.Dir == ioa.RT:
		s = s.clone()
		s.awake = false
		return s, nil
	case a.Kind == ioa.KindCrash && a.Dir == ioa.RT:
		return srRState{}, nil
	case a.Kind == ioa.KindReceivePkt && a.Dir == ioa.TR:
		h, isData := parse1(a.Pkt.Header, "data")
		if !isData {
			return s, nil
		}
		s = s.clone()
		// Map the wire header to an absolute sequence. Within the receive
		// window [expect, expect+w) it is new data to buffer; within
		// [expect-w, expect) it is a duplicate that still needs re-acking
		// (its ack may have been lost). With w ≤ n/2 over a FIFO channel
		// the two windows cannot be confused.
		diff := ((h-s.expect%r.n)%r.n + r.n) % r.n
		switch {
		case diff < r.w:
			abs := s.expect + diff
			if _, dup := s.buffer[abs]; !dup {
				if s.buffer == nil {
					s.buffer = map[int]ioa.Message{}
				}
				s.buffer[abs] = a.Pkt.Payload
			}
			// Drain the in-order prefix into the delivery queue.
			for {
				m, okBuf := s.buffer[s.expect]
				if !okBuf {
					break
				}
				delete(s.buffer, s.expect)
				s.pending = append(s.pending, m)
				s.expect++
			}
			s.acks = append(s.acks, AckHeader(h))
		case r.n-diff <= r.w:
			// Below the window: already delivered; re-ack.
			s.acks = append(s.acks, AckHeader(h))
		default:
			// Outside both windows (cannot happen over FIFO with w ≤ n/2,
			// but the automaton must be input-enabled): ignore.
		}
		return s, nil
	case a.Kind == ioa.KindSendPkt && a.Dir == ioa.RT:
		if !s.awake || len(s.acks) == 0 || !sendPktEnabled(a.Pkt, ctrlPkt(s.acks[0])) {
			return nil, errNotEnabled(r.Name(), a)
		}
		s = s.clone()
		s.acks = s.acks[1:]
		return s, nil
	case a.Kind == ioa.KindReceiveMsg && a.Dir == ioa.TR:
		if len(s.pending) == 0 || s.pending[0] != a.Msg {
			return nil, errNotEnabled(r.Name(), a)
		}
		s = s.clone()
		s.pending = s.pending[1:]
		return s, nil
	default:
		return nil, errNotInSignature(r.Name(), a)
	}
}

func (r *srReceiver) Enabled(st ioa.State) []ioa.Action {
	s, ok := st.(srRState)
	if !ok {
		return nil
	}
	var out []ioa.Action
	if len(s.pending) > 0 {
		out = append(out, ioa.ReceiveMsg(ioa.TR, s.pending[0]))
	}
	if s.awake && len(s.acks) > 0 {
		out = append(out, ioa.SendPkt(ioa.RT, ctrlPkt(s.acks[0])))
	}
	return out
}

func (*srReceiver) ClassOf(a ioa.Action) ioa.Class {
	if a.Kind == ioa.KindReceiveMsg {
		return ClassDeliver
	}
	return ClassAck
}

func (*srReceiver) Classes() []ioa.Class { return []ioa.Class{ClassDeliver, ClassAck} }
