package protocol

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/ioa"
)

// NewNonVolatile returns a Baratz–Segall-style protocol that tolerates
// host crashes using non-volatile memory, demonstrating that Theorem 7.5
// is tight: its hypothesis (the *crashing* property — a crash resets the
// automaton to its start state) fails for this protocol, and the protocol
// indeed provides weak data-link behavior across arbitrary crash/loss
// schedules.
//
// Design, following the link-initialization idea of [BS83]: the
// transmitter keeps a non-volatile epoch counter that it increments on
// every crash; after a crash it runs a handshake (syn/e, synack/e) before
// resuming data transfer, and all data and ack packets are tagged with the
// epoch. The receiver keeps its current epoch, its next expected sequence
// number, and its accepted-but-undelivered messages in non-volatile
// memory. ([BS83] achieves link-failure tolerance with a single
// non-volatile bit; tolerating host crashes of both stations needs the
// receiver-side counters too, which is consistent with Theorem 7.5 — some
// non-volatile state is unavoidable.)
//
// Crash semantics in the model: crash^{t,r} maps the transmitter state to
// a state that preserves only the epoch counter (incremented); crash^{r,t}
// preserves the receiver's epoch, expected sequence and undelivered queue.
// Neither automaton returns to its start state, so the protocol is not
// crashing and the crash-pump adversary's hypothesis check rejects it.
//
// Liveness note: messages accepted by the transmitter before one of its
// crashes may be lost, which is permitted — a crash ends the transmitter
// working interval, and (DL8) only obliges delivery of messages sent in an
// unbounded working interval.
func NewNonVolatile() core.Protocol {
	return core.Protocol{
		Name: "nonvolatile",
		T:    &nvTransmitter{},
		R:    &nvReceiver{},
		Props: core.Properties{
			MessageIndependent: true,
			PayloadOpaque:      true,
			Crashing:           false, // non-volatile memory survives crashes
			Headers:            nil,   // epochs are unbounded
			KBound:             1,
			RequiresFIFO:       true,
		},
	}
}

// nvTState is the non-volatile protocol's transmitter state. epoch is
// non-volatile; everything else is volatile.
type nvTState struct {
	epoch int // non-volatile crash counter
	awake bool
	conn  bool // handshake for the current epoch completed
	base  int  // absolute sequence of queue[0] within the current epoch
	queue []ioa.Message
}

var (
	_ ioa.EquivState          = nvTState{}
	_ ioa.AppendFingerprinter = nvTState{}
)

func (s nvTState) Fingerprint() string { return string(s.AppendFingerprint(nil)) }

func (s nvTState) AppendFingerprint(dst []byte) []byte {
	dst = append(dst, "nvT{e="...)
	dst = appendInt(dst, s.epoch)
	dst = append(dst, " awake="...)
	dst = strconv.AppendBool(dst, s.awake)
	dst = append(dst, " conn="...)
	dst = strconv.AppendBool(dst, s.conn)
	dst = append(dst, " base="...)
	dst = appendInt(dst, s.base)
	dst = append(dst, " q="...)
	dst = appendMsgs(dst, s.queue)
	return append(dst, '}')
}

func (s nvTState) EquivFingerprint() string {
	return fmt.Sprintf("nvT{e=%d awake=%t conn=%t base=%d q=%s}",
		s.epoch, s.awake, s.conn, s.base, eqMsgs(s.queue))
}

func (s nvTState) clone() nvTState {
	s.queue = cloneMsgs(s.queue)
	return s
}

// nvTransmitter is A^t of the non-volatile protocol.
type nvTransmitter struct{}

var _ ioa.Automaton = (*nvTransmitter)(nil)

func (*nvTransmitter) Name() string { return "nv.T" }

func (*nvTransmitter) Signature() ioa.Signature { return core.TransmitterSignature() }

func (*nvTransmitter) Start() ioa.State { return nvTState{} }

// wants returns the packets the transmitter is currently willing to send.
func (s nvTState) wants() []ioa.Packet {
	if !s.awake {
		return nil
	}
	if !s.conn {
		return []ioa.Packet{ctrlPkt(SynHeader(s.epoch))}
	}
	if len(s.queue) > 0 {
		return []ioa.Packet{dataPkt(EpochDataHeader(s.epoch, s.base), s.queue[0])}
	}
	return nil
}

func (t *nvTransmitter) Step(st ioa.State, a ioa.Action) (ioa.State, error) {
	s, ok := st.(nvTState)
	if !ok {
		return nil, errBadState(t.Name(), st)
	}
	switch {
	case a.Kind == ioa.KindWake && a.Dir == ioa.TR:
		s = s.clone()
		s.awake = true
		return s, nil
	case a.Kind == ioa.KindFail && a.Dir == ioa.TR:
		s = s.clone()
		s.awake = false
		return s, nil
	case a.Kind == ioa.KindCrash && a.Dir == ioa.TR:
		// NOT crashing in the paper's sense: the non-volatile epoch
		// survives (incremented so the new incarnation is distinguishable).
		return nvTState{epoch: s.epoch + 1}, nil
	case a.Kind == ioa.KindSendMsg && a.Dir == ioa.TR:
		s = s.clone()
		s.queue = append(s.queue, a.Msg)
		return s, nil
	case a.Kind == ioa.KindReceivePkt && a.Dir == ioa.RT:
		if e, isSynAck := parse1(a.Pkt.Header, "synack"); isSynAck {
			if e == s.epoch && !s.conn {
				s = s.clone()
				s.conn = true
				s.base = 0
				return s, nil
			}
			return s, nil
		}
		if e, j, isAck := parse2(a.Pkt.Header, "ack"); isAck {
			if e == s.epoch && s.conn && j > s.base {
				n := j - s.base
				if n > len(s.queue) {
					n = len(s.queue)
				}
				s = s.clone()
				s.queue = s.queue[n:]
				s.base += n
			}
			return s, nil
		}
		return s, nil
	case a.Kind == ioa.KindSendPkt && a.Dir == ioa.TR:
		for _, want := range s.wants() {
			if sendPktEnabled(a.Pkt, want) {
				return s, nil
			}
		}
		return nil, errNotEnabled(t.Name(), a)
	default:
		return nil, errNotInSignature(t.Name(), a)
	}
}

func (t *nvTransmitter) Enabled(st ioa.State) []ioa.Action {
	s, ok := st.(nvTState)
	if !ok {
		return nil
	}
	var out []ioa.Action
	for _, p := range s.wants() {
		out = append(out, ioa.SendPkt(ioa.TR, p))
	}
	return out
}

func (*nvTransmitter) ClassOf(a ioa.Action) ioa.Class {
	if tag, _, ok := ParseHeader(a.Pkt.Header); ok && tag == "syn" {
		return ClassInit
	}
	return ClassXmit
}

func (*nvTransmitter) Classes() []ioa.Class { return []ioa.Class{ClassInit, ClassXmit} }

// nvRState is the non-volatile protocol's receiver state. epoch, expect
// and pending are non-volatile; awake and acks are volatile.
type nvRState struct {
	epoch   int           // non-volatile: last accepted transmitter epoch (0 = none)
	hasE    bool          // non-volatile: whether any epoch has been accepted
	expect  int           // non-volatile: next expected sequence in epoch
	pending []ioa.Message // non-volatile: accepted but not yet delivered
	awake   bool
	acks    []ioa.Header
}

var (
	_ ioa.EquivState          = nvRState{}
	_ ioa.AppendFingerprinter = nvRState{}
)

func (s nvRState) Fingerprint() string { return string(s.AppendFingerprint(nil)) }

func (s nvRState) AppendFingerprint(dst []byte) []byte {
	dst = append(dst, "nvR{e="...)
	dst = appendInt(dst, s.epoch)
	dst = append(dst, " hasE="...)
	dst = strconv.AppendBool(dst, s.hasE)
	dst = append(dst, " exp="...)
	dst = appendInt(dst, s.expect)
	dst = append(dst, " pend="...)
	dst = appendMsgs(dst, s.pending)
	dst = append(dst, " awake="...)
	dst = strconv.AppendBool(dst, s.awake)
	dst = append(dst, " acks="...)
	dst = appendHeaders(dst, s.acks)
	return append(dst, '}')
}

func (s nvRState) EquivFingerprint() string {
	return fmt.Sprintf("nvR{e=%d hasE=%t exp=%d pend=%s awake=%t acks=%s}",
		s.epoch, s.hasE, s.expect, eqMsgs(s.pending), s.awake, fpHeaders(s.acks))
}

func (s nvRState) clone() nvRState {
	s.pending = cloneMsgs(s.pending)
	s.acks = cloneHeaders(s.acks)
	return s
}

// nvReceiver is A^r of the non-volatile protocol.
type nvReceiver struct{}

var _ ioa.Automaton = (*nvReceiver)(nil)

func (*nvReceiver) Name() string { return "nv.R" }

func (*nvReceiver) Signature() ioa.Signature { return core.ReceiverSignature() }

func (*nvReceiver) Start() ioa.State { return nvRState{} }

func (r *nvReceiver) Step(st ioa.State, a ioa.Action) (ioa.State, error) {
	s, ok := st.(nvRState)
	if !ok {
		return nil, errBadState(r.Name(), st)
	}
	switch {
	case a.Kind == ioa.KindWake && a.Dir == ioa.RT:
		s = s.clone()
		s.awake = true
		return s, nil
	case a.Kind == ioa.KindFail && a.Dir == ioa.RT:
		s = s.clone()
		s.awake = false
		return s, nil
	case a.Kind == ioa.KindCrash && a.Dir == ioa.RT:
		// NOT crashing: the non-volatile epoch/expect/pending survive, so
		// accepted messages are neither lost nor re-delivered.
		return nvRState{epoch: s.epoch, hasE: s.hasE, expect: s.expect, pending: cloneMsgs(s.pending)}, nil
	case a.Kind == ioa.KindReceivePkt && a.Dir == ioa.TR:
		if e, isSyn := parse1(a.Pkt.Header, "syn"); isSyn {
			s = s.clone()
			if !s.hasE || e != s.epoch {
				// New transmitter incarnation: adopt its epoch and restart
				// the sequence space. FIFO channels guarantee no packets of
				// the old epoch arrive after this syn.
				s.epoch = e
				s.hasE = true
				s.expect = 0
			}
			s.acks = append(s.acks, SynAckHeader(s.epoch))
			return s, nil
		}
		if e, v, isData := parse2(a.Pkt.Header, "data"); isData {
			if !s.hasE || e != s.epoch {
				return s, nil // stale epoch: ignore entirely
			}
			s = s.clone()
			if v == s.expect {
				s.pending = append(s.pending, a.Pkt.Payload)
				s.expect++
			}
			s.acks = append(s.acks, EpochAckHeader(s.epoch, s.expect))
			return s, nil
		}
		return s, nil
	case a.Kind == ioa.KindSendPkt && a.Dir == ioa.RT:
		if !s.awake || len(s.acks) == 0 || !sendPktEnabled(a.Pkt, ctrlPkt(s.acks[0])) {
			return nil, errNotEnabled(r.Name(), a)
		}
		s = s.clone()
		s.acks = s.acks[1:]
		return s, nil
	case a.Kind == ioa.KindReceiveMsg && a.Dir == ioa.TR:
		if len(s.pending) == 0 || s.pending[0] != a.Msg {
			return nil, errNotEnabled(r.Name(), a)
		}
		s = s.clone()
		s.pending = s.pending[1:]
		return s, nil
	default:
		return nil, errNotInSignature(r.Name(), a)
	}
}

func (r *nvReceiver) Enabled(st ioa.State) []ioa.Action {
	s, ok := st.(nvRState)
	if !ok {
		return nil
	}
	var out []ioa.Action
	if len(s.pending) > 0 {
		out = append(out, ioa.ReceiveMsg(ioa.TR, s.pending[0]))
	}
	if s.awake && len(s.acks) > 0 {
		out = append(out, ioa.SendPkt(ioa.RT, ctrlPkt(s.acks[0])))
	}
	return out
}

func (*nvReceiver) ClassOf(a ioa.Action) ioa.Class {
	if a.Kind == ioa.KindReceiveMsg {
		return ClassDeliver
	}
	return ClassAck
}

func (*nvReceiver) Classes() []ioa.Class { return []ioa.Class{ClassDeliver, ClassAck} }
