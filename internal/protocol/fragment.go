package protocol

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/ioa"
)

// NewFragmenting returns a stop-and-wait protocol (one message outstanding,
// sequence numbers modulo n) that carries every message in exactly f
// fragments. Each fragment is a separate packet with header data/<seq>/<i>
// and is acknowledged individually with fack/<seq>/<i>; the transmitter
// advances to the next message once all f fragment acks for the current
// sequence have arrived, and it retransmits only still-unacknowledged
// fragments.
//
// Its purpose in the reproduction is the k-boundedness dimension of
// Theorem 8.5: delivering one message costs f receive_pkt events on the
// t→r channel, so the protocol is f-bounded (not 1-bounded like the
// others), and the Lemma 8.3 pump must accumulate up to k = f stale
// equivalents per header class before its attack fires. The header space
// is {data/s/i, fack/s/i : s < n, i < f}, of size 2·n·f. The fragment
// count is fixed — independent of message contents — so the protocol is
// message-independent (the paper's §9 discusses the length-dependent
// variant).
//
// It panics on invalid parameters, which indicate a caller bug.
func NewFragmenting(n, f int) core.Protocol {
	if n < 2 || f < 1 {
		panic(fmt.Sprintf("protocol: invalid fragmenting parameters n=%d f=%d (need n ≥ 2, f ≥ 1)", n, f))
	}
	headers := make([]ioa.Header, 0, 2*n*f)
	for s := 0; s < n; s++ {
		for i := 0; i < f; i++ {
			headers = append(headers, fragHeader(s, i), fackHeader(s, i))
		}
	}
	return core.Protocol{
		Name: fmt.Sprintf("frag(n=%d,f=%d)", n, f),
		T:    &fragTransmitter{n: n, f: f},
		R:    &fragReceiver{n: n, f: f},
		Props: core.Properties{
			MessageIndependent: true,
			// Not PayloadOpaque: splitFragments derives fragment tokens
			// from message contents, so a whole-message renaming is not an
			// automorphism and symmetry reduction must stay off.
			Crashing:     true,
			Headers:      headers,
			KBound:       f,
			RequiresFIFO: true,
		},
	}
}

// fragHeader is the header of fragment i of the message with sequence s.
func fragHeader(s, i int) ioa.Header {
	return ioa.Header(fmt.Sprintf("data/%d/%d", s, i))
}

// fackHeader is the header acknowledging fragment i of sequence s.
func fackHeader(s, i int) ioa.Header {
	return ioa.Header(fmt.Sprintf("fack/%d/%d", s, i))
}

// splitFragments cuts a message into exactly f contiguous pieces (some
// possibly empty). The cut positions depend only on the length, and the
// fragment count only on f, so equivalent runs use identical headers.
func splitFragments(m ioa.Message, f int) []ioa.Message {
	s := string(m)
	out := make([]ioa.Message, f)
	per := (len(s) + f - 1) / f
	if per == 0 {
		per = 1
	}
	for i := 0; i < f; i++ {
		lo := i * per
		hi := lo + per
		if lo > len(s) {
			lo = len(s)
		}
		if hi > len(s) {
			hi = len(s)
		}
		out[i] = ioa.Message(s[lo:hi])
	}
	return out
}

// joinFragments reassembles what splitFragments cut.
func joinFragments(parts []ioa.Message) ioa.Message {
	var b strings.Builder
	for _, p := range parts {
		b.WriteString(string(p))
	}
	return ioa.Message(b.String())
}

// fragTState is the fragmenting transmitter state: seq is the absolute
// sequence of queue[0], acked[i] records receipt of fack/<seq>/<i>, and
// next is the rotation cursor over fragment indices: exactly one fragment
// (the first unacknowledged one at or after next, cyclically) is offered
// for transmission at a time, so the send rate matches the channel's
// delivery rate and every fragment still gets turns.
type fragTState struct {
	awake bool
	seq   int
	next  int
	queue []ioa.Message
	acked []bool
}

var (
	_ ioa.EquivState          = fragTState{}
	_ ioa.AppendFingerprinter = fragTState{}
)

func (s fragTState) Fingerprint() string { return string(s.AppendFingerprint(nil)) }

func (s fragTState) AppendFingerprint(dst []byte) []byte {
	dst = append(dst, "fragT{awake="...)
	dst = strconv.AppendBool(dst, s.awake)
	dst = append(dst, " seq="...)
	dst = appendInt(dst, s.seq)
	dst = append(dst, " next="...)
	dst = appendInt(dst, s.next)
	dst = append(dst, " q="...)
	dst = appendMsgs(dst, s.queue)
	dst = append(dst, " acked="...)
	dst = appendBools(dst, s.acked)
	return append(dst, '}')
}

func (s fragTState) EquivFingerprint() string {
	return fmt.Sprintf("fragT{awake=%t seq=%d next=%d q=%s acked=%s}", s.awake, s.seq, s.next, eqMsgs(s.queue), fpBools(s.acked))
}

func (s fragTState) clone() fragTState {
	s.queue = cloneMsgs(s.queue)
	s.acked = append([]bool(nil), s.acked...)
	return s
}

// fragTransmitter is A^t of the fragmenting protocol.
type fragTransmitter struct {
	n, f int
}

var _ ioa.Automaton = (*fragTransmitter)(nil)

func (t *fragTransmitter) Name() string { return fmt.Sprintf("frag(%d,%d).T", t.n, t.f) }

func (*fragTransmitter) Signature() ioa.Signature { return core.TransmitterSignature() }

func (*fragTransmitter) Start() ioa.State { return fragTState{} }

func (t *fragTransmitter) fragAcked(s fragTState, i int) bool {
	return i < len(s.acked) && s.acked[i]
}

// wantIndex returns the fragment index currently offered for transmission:
// the first unacknowledged index at or after the rotation cursor,
// cyclically. ok is false when nothing is sendable.
func (t *fragTransmitter) wantIndex(s fragTState) (int, bool) {
	if !s.awake || len(s.queue) == 0 {
		return 0, false
	}
	for off := 0; off < t.f; off++ {
		i := (s.next + off) % t.f
		if !t.fragAcked(s, i) {
			return i, true
		}
	}
	return 0, false
}

// wants returns the single fragment currently offered for transmission.
func (t *fragTransmitter) wants(s fragTState) []ioa.Packet {
	i, ok := t.wantIndex(s)
	if !ok {
		return nil
	}
	frags := splitFragments(s.queue[0], t.f)
	return []ioa.Packet{dataPkt(fragHeader(s.seq%t.n, i), frags[i])}
}

func (t *fragTransmitter) Step(st ioa.State, a ioa.Action) (ioa.State, error) {
	s, ok := st.(fragTState)
	if !ok {
		return nil, errBadState(t.Name(), st)
	}
	switch {
	case a.Kind == ioa.KindWake && a.Dir == ioa.TR:
		s = s.clone()
		s.awake = true
		return s, nil
	case a.Kind == ioa.KindFail && a.Dir == ioa.TR:
		s = s.clone()
		s.awake = false
		return s, nil
	case a.Kind == ioa.KindCrash && a.Dir == ioa.TR:
		return fragTState{}, nil
	case a.Kind == ioa.KindSendMsg && a.Dir == ioa.TR:
		s = s.clone()
		s.queue = append(s.queue, a.Msg)
		return s, nil
	case a.Kind == ioa.KindReceivePkt && a.Dir == ioa.RT:
		seq, frag, isFack := parse2(a.Pkt.Header, "fack")
		if !isFack || len(s.queue) == 0 || seq != s.seq%t.n || frag < 0 || frag >= t.f || t.fragAcked(s, frag) {
			return s, nil
		}
		s = s.clone()
		for len(s.acked) < t.f {
			s.acked = append(s.acked, false)
		}
		s.acked[frag] = true
		all := true
		for _, b := range s.acked {
			all = all && b
		}
		if all {
			s.queue = s.queue[1:]
			s.seq++
			s.acked = nil
			s.next = 0
		}
		return s, nil
	case a.Kind == ioa.KindSendPkt && a.Dir == ioa.TR:
		for _, want := range t.wants(s) {
			if sendPktEnabled(a.Pkt, want) {
				// Advance the rotation cursor so the next unacknowledged
				// fragment gets the next turn: single-class fairness then
				// suffices for per-fragment liveness, and the transmitter
				// sends at most one packet per scheduling turn.
				i, _ := t.wantIndex(s)
				s = s.clone()
				s.next = (i + 1) % t.f
				return s, nil
			}
		}
		return nil, errNotEnabled(t.Name(), a)
	default:
		return nil, errNotInSignature(t.Name(), a)
	}
}

func (t *fragTransmitter) Enabled(st ioa.State) []ioa.Action {
	s, ok := st.(fragTState)
	if !ok {
		return nil
	}
	var out []ioa.Action
	for _, p := range t.wants(s) {
		out = append(out, ioa.SendPkt(ioa.TR, p))
	}
	return out
}

func (*fragTransmitter) ClassOf(ioa.Action) ioa.Class { return ClassXmit }

func (*fragTransmitter) Classes() []ioa.Class { return []ioa.Class{ClassXmit} }

// fragRState is the fragmenting receiver state: parts accumulates the
// in-order fragments of the message with absolute sequence expect.
type fragRState struct {
	awake   bool
	expect  int
	parts   []ioa.Message
	acks    []ioa.Header
	pending []ioa.Message
}

var (
	_ ioa.EquivState          = fragRState{}
	_ ioa.AppendFingerprinter = fragRState{}
)

func (s fragRState) Fingerprint() string { return string(s.AppendFingerprint(nil)) }

func (s fragRState) AppendFingerprint(dst []byte) []byte {
	dst = append(dst, "fragR{awake="...)
	dst = strconv.AppendBool(dst, s.awake)
	dst = append(dst, " exp="...)
	dst = appendInt(dst, s.expect)
	dst = append(dst, " parts="...)
	dst = appendMsgs(dst, s.parts)
	dst = append(dst, " acks="...)
	dst = appendHeaders(dst, s.acks)
	dst = append(dst, " pend="...)
	dst = appendMsgs(dst, s.pending)
	return append(dst, '}')
}

func (s fragRState) EquivFingerprint() string {
	return fmt.Sprintf("fragR{awake=%t exp=%d parts=%s acks=%s pend=%s}",
		s.awake, s.expect, eqMsgs(s.parts), fpHeaders(s.acks), eqMsgs(s.pending))
}

func (s fragRState) clone() fragRState {
	s.parts = cloneMsgs(s.parts)
	s.acks = cloneHeaders(s.acks)
	s.pending = cloneMsgs(s.pending)
	return s
}

// fragReceiver is A^r of the fragmenting protocol: it accepts the
// fragments of the expected sequence strictly in order, acknowledging each
// accepted or duplicate fragment individually.
type fragReceiver struct {
	n, f int
}

var _ ioa.Automaton = (*fragReceiver)(nil)

func (r *fragReceiver) Name() string { return fmt.Sprintf("frag(%d,%d).R", r.n, r.f) }

func (*fragReceiver) Signature() ioa.Signature { return core.ReceiverSignature() }

func (*fragReceiver) Start() ioa.State { return fragRState{} }

func (r *fragReceiver) Step(st ioa.State, a ioa.Action) (ioa.State, error) {
	s, ok := st.(fragRState)
	if !ok {
		return nil, errBadState(r.Name(), st)
	}
	switch {
	case a.Kind == ioa.KindWake && a.Dir == ioa.RT:
		s = s.clone()
		s.awake = true
		return s, nil
	case a.Kind == ioa.KindFail && a.Dir == ioa.RT:
		s = s.clone()
		s.awake = false
		return s, nil
	case a.Kind == ioa.KindCrash && a.Dir == ioa.RT:
		return fragRState{}, nil
	case a.Kind == ioa.KindReceivePkt && a.Dir == ioa.TR:
		seq, frag, isData := parse2(a.Pkt.Header, "data")
		if !isData {
			return s, nil
		}
		switch {
		case seq == s.expect%r.n && frag == len(s.parts):
			// The next fragment of the expected message, in order.
			s = s.clone()
			s.parts = append(s.parts, a.Pkt.Payload)
			s.acks = append(s.acks, fackHeader(seq, frag))
			if len(s.parts) == r.f {
				s.pending = append(s.pending, joinFragments(s.parts))
				s.parts = nil
				s.expect++
			}
			return s, nil
		case seq == s.expect%r.n && frag < len(s.parts),
			seq == (s.expect+r.n-1)%r.n && len(s.parts) == 0:
			// A duplicate of an already-accepted fragment (current message
			// or the just-completed one): re-ack so a lost fack cannot
			// wedge the transmitter.
			s = s.clone()
			s.acks = append(s.acks, fackHeader(seq, frag))
			return s, nil
		default:
			return s, nil // out-of-order fragment: ignore, never ack
		}
	case a.Kind == ioa.KindSendPkt && a.Dir == ioa.RT:
		if !s.awake || len(s.acks) == 0 || !sendPktEnabled(a.Pkt, ctrlPkt(s.acks[0])) {
			return nil, errNotEnabled(r.Name(), a)
		}
		s = s.clone()
		s.acks = s.acks[1:]
		return s, nil
	case a.Kind == ioa.KindReceiveMsg && a.Dir == ioa.TR:
		if len(s.pending) == 0 || s.pending[0] != a.Msg {
			return nil, errNotEnabled(r.Name(), a)
		}
		s = s.clone()
		s.pending = s.pending[1:]
		return s, nil
	default:
		return nil, errNotInSignature(r.Name(), a)
	}
}

func (r *fragReceiver) Enabled(st ioa.State) []ioa.Action {
	s, ok := st.(fragRState)
	if !ok {
		return nil
	}
	var out []ioa.Action
	if len(s.pending) > 0 {
		out = append(out, ioa.ReceiveMsg(ioa.TR, s.pending[0]))
	}
	if s.awake && len(s.acks) > 0 {
		out = append(out, ioa.SendPkt(ioa.RT, ctrlPkt(s.acks[0])))
	}
	return out
}

func (*fragReceiver) ClassOf(a ioa.Action) ioa.Class {
	if a.Kind == ioa.KindReceiveMsg {
		return ClassDeliver
	}
	return ClassAck
}

func (*fragReceiver) Classes() []ioa.Class { return []ioa.Class{ClassDeliver, ClassAck} }
