package protocol

import (
	"fmt"
	"testing"

	"repro/internal/ioa"
)

func TestStenningTransmitterSendsLowestUnacked(t *testing.T) {
	p := NewStenning()
	tx := p.T
	st := tx.Start()
	st = step(t, tx, st, ioa.Wake(ioa.TR))
	st = step(t, tx, st, ioa.SendMsg(ioa.TR, "m0"))
	st = step(t, tx, st, ioa.SendMsg(ioa.TR, "m1"))
	enabled := tx.Enabled(st)
	if len(enabled) != 1 || enabled[0].Pkt.Header != DataHeader(0) || enabled[0].Pkt.Payload != "m0" {
		t.Fatalf("enabled = %v, want data/0(m0)", enabled)
	}
	// Cumulative ack for both.
	st = step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 1, Header: AckHeader(2)}))
	got := st.(stnTState)
	if got.base != 2 || len(got.queue) != 0 {
		t.Fatalf("after ack/2: %+v", got)
	}
}

func TestStenningStaleAcksHarmless(t *testing.T) {
	p := NewStenning()
	tx := p.T
	st := tx.Start()
	st = step(t, tx, st, ioa.Wake(ioa.TR))
	for i := 0; i < 3; i++ {
		st = step(t, tx, st, ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("m%d", i))))
	}
	st = step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 1, Header: AckHeader(2)}))
	// Reordered stale ack: absolute numbering makes it unambiguous.
	st2 := step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 2, Header: AckHeader(1)}))
	if !ioa.StatesEqual(st, st2) {
		t.Error("stale absolute ack changed state — Stenning must ignore it")
	}
}

func TestStenningReceiverExactMatchOnly(t *testing.T) {
	p := NewStenning()
	rx := p.R
	st := rx.Start()
	st = step(t, rx, st, ioa.Wake(ioa.RT))
	// Reordered future packet: discarded (and re-acked), never buffered.
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 1, Header: DataHeader(5), Payload: "m5"}))
	got := st.(stnRState)
	if len(got.pending) != 0 || got.expect != 0 {
		t.Fatalf("future packet accepted: %+v", got)
	}
	// Stale duplicate: discarded. Absolute numbers mean a stale data/0
	// after delivery cannot be mistaken for new data — the contrast with
	// Go-Back-N's wrap-around.
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 2, Header: DataHeader(0), Payload: "m0"}))
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 3, Header: DataHeader(0), Payload: "m0-dup"}))
	got = st.(stnRState)
	if len(got.pending) != 1 || got.expect != 1 {
		t.Fatalf("exact-match acceptance broken: %+v", got)
	}
}

func TestStenningHeaderGrowthIsLinear(t *testing.T) {
	// The footnote-1 observation that Theorem 8.5 makes necessary: the
	// header space grows with the number of messages. After n deliveries
	// the receiver acks with value n, so the header alphabet used is
	// Θ(n).
	p := NewStenning()
	rx := p.R
	st := rx.Start()
	st = step(t, rx, st, ioa.Wake(ioa.RT))
	const n = 50
	for i := 0; i < n; i++ {
		st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{
			ID: uint64(i + 1), Header: DataHeader(i), Payload: ioa.Message(fmt.Sprintf("m%d", i)),
		}))
	}
	got := st.(stnRState)
	if got.expect != n {
		t.Fatalf("expect = %d, want %d", got.expect, n)
	}
	seen := map[ioa.Header]bool{}
	for _, h := range got.acks {
		seen[h] = true
	}
	if len(seen) != n {
		t.Errorf("distinct ack headers = %d, want %d (linear growth)", len(seen), n)
	}
}
