package protocol

import (
	"testing"

	"repro/internal/ioa"
)

func TestNVTransmitterHandshake(t *testing.T) {
	p := NewNonVolatile()
	tx := p.T
	st := tx.Start()
	st = step(t, tx, st, ioa.Wake(ioa.TR))
	st = step(t, tx, st, ioa.SendMsg(ioa.TR, "m0"))
	// Before the handshake completes, only syn is offered.
	enabled := tx.Enabled(st)
	if len(enabled) != 1 || enabled[0].Pkt.Header != SynHeader(0) {
		t.Fatalf("enabled = %v, want syn/0", enabled)
	}
	// Wrong-epoch synack is ignored.
	st2 := step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 1, Header: SynAckHeader(3)}))
	if !ioa.StatesEqual(st, st2) {
		t.Error("stale synack changed state")
	}
	// Matching synack connects and switches to data transfer.
	st = step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 2, Header: SynAckHeader(0)}))
	enabled = tx.Enabled(st)
	if len(enabled) != 1 || enabled[0].Pkt.Header != EpochDataHeader(0, 0) {
		t.Fatalf("enabled after connect = %v, want data/0/0", enabled)
	}
	// Cumulative epoch ack pops the queue.
	st = step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 3, Header: EpochAckHeader(0, 1)}))
	got := st.(nvTState)
	if got.base != 1 || len(got.queue) != 0 {
		t.Fatalf("after epoch ack: %+v", got)
	}
}

func TestNVCrashPreservesNonVolatileState(t *testing.T) {
	p := NewNonVolatile()
	tx := p.T
	st := tx.Start()
	st = step(t, tx, st, ioa.Wake(ioa.TR))
	st = step(t, tx, st, ioa.SendMsg(ioa.TR, "m0"))
	st = step(t, tx, st, ioa.Crash(ioa.TR))
	got := st.(nvTState)
	if got.epoch != 1 {
		t.Errorf("crash should bump the non-volatile epoch, got %d", got.epoch)
	}
	if got.awake || got.conn || len(got.queue) != 0 {
		t.Errorf("volatile fields should reset: %+v", got)
	}
	if ioa.StatesEqual(st, tx.Start()) {
		t.Error("the protocol must NOT be crashing (that is the point)")
	}

	rx := p.R
	rst := rx.Start()
	rst = step(t, rx, rst, ioa.Wake(ioa.RT))
	rst = step(t, rx, rst, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 1, Header: SynHeader(0)}))
	rst = step(t, rx, rst, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 2, Header: EpochDataHeader(0, 0), Payload: "m0"}))
	rst = step(t, rx, rst, ioa.Crash(ioa.RT))
	got2 := rst.(nvRState)
	if !got2.hasE || got2.epoch != 0 || got2.expect != 1 {
		t.Errorf("receiver crash lost non-volatile epoch/expect: %+v", got2)
	}
	if len(got2.pending) != 1 || got2.pending[0] != "m0" {
		t.Errorf("receiver crash lost accepted-but-undelivered messages: %+v", got2)
	}
	if len(got2.acks) != 0 || got2.awake {
		t.Errorf("receiver volatile fields should reset: %+v", got2)
	}
}

func TestNVReceiverEpochDiscipline(t *testing.T) {
	p := NewNonVolatile()
	rx := p.R
	st := rx.Start()
	st = step(t, rx, st, ioa.Wake(ioa.RT))
	// Data before any syn: ignored.
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 1, Header: EpochDataHeader(0, 0), Payload: "x"}))
	if len(st.(nvRState).pending) != 0 {
		t.Fatal("data accepted before handshake")
	}
	// Adopt epoch 0, accept data, then adopt epoch 1 after a (simulated)
	// transmitter crash: the sequence space restarts.
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 2, Header: SynHeader(0)}))
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 3, Header: EpochDataHeader(0, 0), Payload: "a"}))
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 4, Header: SynHeader(1)}))
	got := st.(nvRState)
	if got.epoch != 1 || got.expect != 0 {
		t.Fatalf("epoch switch: %+v", got)
	}
	// Stale epoch-0 data after the switch: ignored (cannot re-deliver).
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 5, Header: EpochDataHeader(0, 1), Payload: "b"}))
	if len(st.(nvRState).pending) != 1 {
		t.Error("stale-epoch data accepted")
	}
	// Re-syn of the current epoch just re-acks, keeping expect.
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 6, Header: EpochDataHeader(1, 0), Payload: "c"}))
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 7, Header: SynHeader(1)}))
	got = st.(nvRState)
	if got.expect != 1 {
		t.Errorf("duplicate syn reset expect: %+v", got)
	}
}

func TestNVTransmitterClasses(t *testing.T) {
	p := NewNonVolatile()
	syn := ioa.SendPkt(ioa.TR, ioa.Packet{Header: SynHeader(0)})
	data := ioa.SendPkt(ioa.TR, ioa.Packet{Header: EpochDataHeader(0, 0), Payload: "m"})
	if p.T.ClassOf(syn) != ClassInit {
		t.Error("syn should be in the init class")
	}
	if p.T.ClassOf(data) != ClassXmit {
		t.Error("data should be in the xmit class")
	}
	if len(p.T.Classes()) != 2 {
		t.Errorf("classes = %v", p.T.Classes())
	}
}
