package protocol

import (
	"fmt"
	"testing"

	"repro/internal/ioa"
)

func TestGBNTransmitterWindow(t *testing.T) {
	p := NewGoBackN(8, 3)
	tx := p.T
	st := tx.Start()
	st = step(t, tx, st, ioa.Wake(ioa.TR))
	for i := 0; i < 5; i++ {
		st = step(t, tx, st, ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("m%d", i))))
	}
	enabled := tx.Enabled(st)
	if len(enabled) != 3 {
		t.Fatalf("window should expose 3 sends, got %d: %v", len(enabled), enabled)
	}
	for i, a := range enabled {
		wantH := DataHeader(i % 8)
		if a.Pkt.Header != wantH {
			t.Errorf("enabled[%d] header = %s, want %s", i, a.Pkt.Header, wantH)
		}
		if a.Pkt.Payload != ioa.Message(fmt.Sprintf("m%d", i)) {
			t.Errorf("enabled[%d] payload = %s", i, a.Pkt.Payload)
		}
	}
}

func TestGBNCumulativeAck(t *testing.T) {
	p := NewGoBackN(8, 3)
	tx := p.T
	st := tx.Start()
	st = step(t, tx, st, ioa.Wake(ioa.TR))
	for i := 0; i < 4; i++ {
		st = step(t, tx, st, ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("m%d", i))))
	}
	// Ack "next expected = 2" acknowledges m0, m1.
	st = step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 1, Header: AckHeader(2)}))
	got := st.(gbnTState)
	if got.base != 2 || len(got.queue) != 2 {
		t.Fatalf("after cumulative ack: base=%d queue=%d", got.base, len(got.queue))
	}
	// Duplicate ack (next expected = 2 = base): ignored.
	st2 := step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 2, Header: AckHeader(2)}))
	if !ioa.StatesEqual(st, st2) {
		t.Error("duplicate ack changed state")
	}
	// Ack beyond the window (diff > outstanding): ignored.
	st3 := step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 3, Header: AckHeader(7)}))
	if !ioa.StatesEqual(st, st3) {
		t.Error("out-of-window ack changed state")
	}
}

func TestGBNModularAckAmbiguity(t *testing.T) {
	// The mod-N ambiguity Theorem 8.5 exploits, in miniature: with n=2 an
	// ack for "next expected 1" is indistinguishable from one sent a full
	// cycle earlier. The transmitter accepts it whenever diff ∈ [1, w].
	p := NewGoBackN(2, 1)
	tx := p.T
	st := tx.Start()
	st = step(t, tx, st, ioa.Wake(ioa.TR))
	st = step(t, tx, st, ioa.SendMsg(ioa.TR, "m0"))
	st = step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 1, Header: AckHeader(1)}))
	if st.(gbnTState).base != 1 {
		t.Fatal("genuine ack rejected")
	}
	st = step(t, tx, st, ioa.SendMsg(ioa.TR, "m2"))
	// A STALE ack/0 from before (reordered) falsely acknowledges m2: the
	// bounded header cannot distinguish it from a fresh ack/0.
	st = step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 2, Header: AckHeader(0)}))
	if st.(gbnTState).base != 2 {
		t.Error("mod-2 ambiguity should have advanced the window on the stale ack")
	}
}

func TestGBNReceiverInOrderAcceptance(t *testing.T) {
	p := NewGoBackN(4, 1)
	rx := p.R
	st := rx.Start()
	st = step(t, rx, st, ioa.Wake(ioa.RT))
	// In-order: accepted.
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 1, Header: DataHeader(0), Payload: "m0"}))
	got := st.(gbnRState)
	if got.expect != 1 || len(got.pending) != 1 {
		t.Fatalf("after in-order data: %+v", got)
	}
	if got.acks[0] != AckHeader(1) {
		t.Errorf("cumulative ack = %s, want ack/1", got.acks[0])
	}
	// Out-of-order (seq 2 while expecting 1): discarded but acked with the
	// current expectation.
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 2, Header: DataHeader(2), Payload: "m2"}))
	got = st.(gbnRState)
	if len(got.pending) != 1 || got.expect != 1 {
		t.Error("out-of-order data accepted")
	}
	if got.acks[1] != AckHeader(1) {
		t.Errorf("out-of-order ack = %s, want ack/1", got.acks[1])
	}
	// Wrap-around: after 4 in-order packets the expected header repeats.
	st = rx.Start()
	st = step(t, rx, st, ioa.Wake(ioa.RT))
	for i := 0; i < 5; i++ {
		st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{
			ID: uint64(10 + i), Header: DataHeader(i % 4), Payload: ioa.Message(fmt.Sprintf("w%d", i)),
		}))
	}
	got = st.(gbnRState)
	if got.expect != 5 || len(got.pending) != 5 {
		t.Errorf("wrap-around acceptance: expect=%d pending=%d", got.expect, len(got.pending))
	}
}

func TestGBNCrashResets(t *testing.T) {
	p := NewGoBackN(4, 2)
	st := step(t, p.T, p.T.Start(), ioa.Wake(ioa.TR))
	st = step(t, p.T, st, ioa.SendMsg(ioa.TR, "x"))
	st = step(t, p.T, st, ioa.Crash(ioa.TR))
	if !ioa.StatesEqual(st, p.T.Start()) {
		t.Error("GBN transmitter crash does not reset")
	}
	rst := step(t, p.R, p.R.Start(), ioa.Wake(ioa.RT))
	rst = step(t, p.R, rst, ioa.Crash(ioa.RT))
	if !ioa.StatesEqual(rst, p.R.Start()) {
		t.Error("GBN receiver crash does not reset")
	}
}
