package protocol

import (
	"testing"

	"repro/internal/ioa"
)

func TestHeaderConstructorsAndParsers(t *testing.T) {
	tests := []struct {
		header   ioa.Header
		tag      string
		args     []int
		parsable bool
	}{
		{DataHeader(3), "data", []int{3}, true},
		{AckHeader(0), "ack", []int{0}, true},
		{SynHeader(7), "syn", []int{7}, true},
		{SynAckHeader(2), "synack", []int{2}, true},
		{EpochDataHeader(1, 5), "data", []int{1, 5}, true},
		{EpochAckHeader(4, 0), "ack", []int{4, 0}, true},
		{ioa.Header("garbage"), "", nil, false},
		{ioa.Header("data/xyz"), "", nil, false},
		{ioa.Header(""), "", nil, false},
	}
	for _, tt := range tests {
		tag, args, ok := ParseHeader(tt.header)
		if ok != tt.parsable {
			t.Errorf("ParseHeader(%s) ok = %v, want %v", tt.header, ok, tt.parsable)
			continue
		}
		if !ok {
			continue
		}
		if tag != tt.tag || len(args) != len(tt.args) {
			t.Errorf("ParseHeader(%s) = %s %v, want %s %v", tt.header, tag, args, tt.tag, tt.args)
			continue
		}
		for i := range args {
			if args[i] != tt.args[i] {
				t.Errorf("ParseHeader(%s) args = %v, want %v", tt.header, args, tt.args)
			}
		}
	}
}

func TestParse1Parse2(t *testing.T) {
	if v, ok := parse1(DataHeader(5), "data"); !ok || v != 5 {
		t.Errorf("parse1(data/5) = %d,%v", v, ok)
	}
	if _, ok := parse1(DataHeader(5), "ack"); ok {
		t.Error("parse1 with wrong tag should fail")
	}
	if _, ok := parse1(EpochDataHeader(1, 2), "data"); ok {
		t.Error("parse1 of a two-argument header should fail")
	}
	if e, s, ok := parse2(EpochAckHeader(3, 9), "ack"); !ok || e != 3 || s != 9 {
		t.Errorf("parse2(ack/3/9) = %d,%d,%v", e, s, ok)
	}
	if _, _, ok := parse2(AckHeader(3), "ack"); ok {
		t.Error("parse2 of a one-argument header should fail")
	}
}

func TestNewGoBackNValidation(t *testing.T) {
	for _, bad := range [][2]int{{1, 1}, {4, 0}, {4, 4}, {2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGoBackN(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			NewGoBackN(bad[0], bad[1])
		}()
	}
	// Valid parameters must not panic.
	NewGoBackN(2, 1)
	NewGoBackN(8, 7)
}

func TestProtocolMetadata(t *testing.T) {
	abp := NewABP()
	if !abp.Props.Crashing || !abp.Props.MessageIndependent || !abp.Props.BoundedHeaders() {
		t.Errorf("ABP metadata wrong: %+v", abp.Props)
	}
	if len(abp.Props.Headers) != 4 {
		t.Errorf("ABP headers = %v", abp.Props.Headers)
	}
	gbn := NewGoBackN(8, 3)
	if len(gbn.Props.Headers) != 16 {
		t.Errorf("GBN(8) headers = %d, want 16", len(gbn.Props.Headers))
	}
	stn := NewStenning()
	if stn.Props.BoundedHeaders() {
		t.Error("Stenning must have unbounded headers")
	}
	if stn.Props.RequiresFIFO {
		t.Error("Stenning works over non-FIFO channels")
	}
	nv := NewNonVolatile()
	if nv.Props.Crashing {
		t.Error("the non-volatile protocol must not claim the crashing property")
	}
}

func TestStatesAreValues(t *testing.T) {
	// Steps must never alias: mutating the successor's queue (via a
	// further step) must not affect the predecessor.
	tx := &abpTransmitter{}
	s0 := tx.Start()
	s1, err := tx.Step(s0, ioa.SendMsg(ioa.TR, "a"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := tx.Step(s1, ioa.SendMsg(ioa.TR, "b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.(abpTState).queue) != 1 {
		t.Error("step aliased predecessor state")
	}
	if len(s2.(abpTState).queue) != 2 {
		t.Error("successor missing message")
	}
	if len(s0.(abpTState).queue) != 0 {
		t.Error("start state mutated")
	}
}
