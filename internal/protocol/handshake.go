package protocol

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/ioa"
)

// NewHandshake returns an alternating-bit protocol preceded by a
// connection handshake (syn / synack), with ALL state volatile: the shape
// of the HDLC-family initialization procedures whose crash behaviour
// Baratz and Segall analysed. The handshake makes the failure-free
// reference execution chattier — the two stations alternate more — so the
// Theorem 7.5 crash pump needs a deeper chain of crash-and-replay phases
// than for plain ABP, which the ablation benchmarks measure. Being
// crashing and bounded-header (six headers), it is defeated by both
// adversaries; its k-bound is 2 because the first message of a connection
// costs a syn delivery in addition to its data packet.
func NewHandshake() core.Protocol {
	return core.Protocol{
		Name: "handshake",
		T:    &hsTransmitter{},
		R:    &hsReceiver{},
		Props: core.Properties{
			MessageIndependent: true,
			PayloadOpaque:      true,
			Crashing:           true,
			Headers: []ioa.Header{
				SynHeader(0), SynAckHeader(0),
				DataHeader(0), DataHeader(1), AckHeader(0), AckHeader(1),
			},
			KBound:       2,
			RequiresFIFO: true,
		},
	}
}

// hsTState is the handshake transmitter state; everything is volatile.
type hsTState struct {
	awake bool
	conn  bool
	bit   int
	queue []ioa.Message
}

var (
	_ ioa.EquivState          = hsTState{}
	_ ioa.AppendFingerprinter = hsTState{}
)

func (s hsTState) Fingerprint() string { return string(s.AppendFingerprint(nil)) }

func (s hsTState) AppendFingerprint(dst []byte) []byte {
	dst = append(dst, "hsT{awake="...)
	dst = strconv.AppendBool(dst, s.awake)
	dst = append(dst, " conn="...)
	dst = strconv.AppendBool(dst, s.conn)
	dst = append(dst, " bit="...)
	dst = appendInt(dst, s.bit)
	dst = append(dst, " q="...)
	dst = appendMsgs(dst, s.queue)
	return append(dst, '}')
}

func (s hsTState) EquivFingerprint() string {
	return fmt.Sprintf("hsT{awake=%t conn=%t bit=%d q=%s}", s.awake, s.conn, s.bit, eqMsgs(s.queue))
}

func (s hsTState) clone() hsTState {
	s.queue = cloneMsgs(s.queue)
	return s
}

// hsTransmitter is A^t of the handshake protocol.
type hsTransmitter struct{}

var _ ioa.Automaton = (*hsTransmitter)(nil)

func (*hsTransmitter) Name() string { return "hs.T" }

func (*hsTransmitter) Signature() ioa.Signature { return core.TransmitterSignature() }

func (*hsTransmitter) Start() ioa.State { return hsTState{} }

func (s hsTState) wants() []ioa.Packet {
	if !s.awake {
		return nil
	}
	if !s.conn {
		return []ioa.Packet{ctrlPkt(SynHeader(0))}
	}
	if len(s.queue) > 0 {
		return []ioa.Packet{dataPkt(DataHeader(s.bit), s.queue[0])}
	}
	return nil
}

func (t *hsTransmitter) Step(st ioa.State, a ioa.Action) (ioa.State, error) {
	s, ok := st.(hsTState)
	if !ok {
		return nil, errBadState(t.Name(), st)
	}
	switch {
	case a.Kind == ioa.KindWake && a.Dir == ioa.TR:
		s = s.clone()
		s.awake = true
		return s, nil
	case a.Kind == ioa.KindFail && a.Dir == ioa.TR:
		s = s.clone()
		s.awake = false
		return s, nil
	case a.Kind == ioa.KindCrash && a.Dir == ioa.TR:
		return hsTState{}, nil // fully volatile: the crashing property
	case a.Kind == ioa.KindSendMsg && a.Dir == ioa.TR:
		s = s.clone()
		s.queue = append(s.queue, a.Msg)
		return s, nil
	case a.Kind == ioa.KindReceivePkt && a.Dir == ioa.RT:
		if _, isSynAck := parse1(a.Pkt.Header, "synack"); isSynAck {
			if !s.conn {
				s = s.clone()
				s.conn = true
				s.bit = 0
			}
			return s, nil
		}
		if b, isAck := parse1(a.Pkt.Header, "ack"); isAck {
			if s.conn && b == s.bit && len(s.queue) > 0 {
				s = s.clone()
				s.queue = s.queue[1:]
				s.bit = 1 - s.bit
			}
			return s, nil
		}
		return s, nil
	case a.Kind == ioa.KindSendPkt && a.Dir == ioa.TR:
		for _, want := range s.wants() {
			if sendPktEnabled(a.Pkt, want) {
				return s, nil
			}
		}
		return nil, errNotEnabled(t.Name(), a)
	default:
		return nil, errNotInSignature(t.Name(), a)
	}
}

func (t *hsTransmitter) Enabled(st ioa.State) []ioa.Action {
	s, ok := st.(hsTState)
	if !ok {
		return nil
	}
	var out []ioa.Action
	for _, p := range s.wants() {
		out = append(out, ioa.SendPkt(ioa.TR, p))
	}
	return out
}

func (*hsTransmitter) ClassOf(a ioa.Action) ioa.Class {
	if tag, _, ok := ParseHeader(a.Pkt.Header); ok && tag == "syn" {
		return ClassInit
	}
	return ClassXmit
}

func (*hsTransmitter) Classes() []ioa.Class { return []ioa.Class{ClassInit, ClassXmit} }

// hsRState is the handshake receiver state; everything is volatile.
type hsRState struct {
	awake   bool
	conn    bool
	expect  int
	acks    []ioa.Header
	pending []ioa.Message
}

var (
	_ ioa.EquivState          = hsRState{}
	_ ioa.AppendFingerprinter = hsRState{}
)

func (s hsRState) Fingerprint() string { return string(s.AppendFingerprint(nil)) }

func (s hsRState) AppendFingerprint(dst []byte) []byte {
	dst = append(dst, "hsR{awake="...)
	dst = strconv.AppendBool(dst, s.awake)
	dst = append(dst, " conn="...)
	dst = strconv.AppendBool(dst, s.conn)
	dst = append(dst, " exp="...)
	dst = appendInt(dst, s.expect)
	dst = append(dst, " acks="...)
	dst = appendHeaders(dst, s.acks)
	dst = append(dst, " pend="...)
	dst = appendMsgs(dst, s.pending)
	return append(dst, '}')
}

func (s hsRState) EquivFingerprint() string {
	return fmt.Sprintf("hsR{awake=%t conn=%t exp=%d acks=%s pend=%s}",
		s.awake, s.conn, s.expect, fpHeaders(s.acks), eqMsgs(s.pending))
}

func (s hsRState) clone() hsRState {
	s.acks = cloneHeaders(s.acks)
	s.pending = cloneMsgs(s.pending)
	return s
}

// hsReceiver is A^r of the handshake protocol.
type hsReceiver struct{}

var _ ioa.Automaton = (*hsReceiver)(nil)

func (*hsReceiver) Name() string { return "hs.R" }

func (*hsReceiver) Signature() ioa.Signature { return core.ReceiverSignature() }

func (*hsReceiver) Start() ioa.State { return hsRState{} }

func (r *hsReceiver) Step(st ioa.State, a ioa.Action) (ioa.State, error) {
	s, ok := st.(hsRState)
	if !ok {
		return nil, errBadState(r.Name(), st)
	}
	switch {
	case a.Kind == ioa.KindWake && a.Dir == ioa.RT:
		s = s.clone()
		s.awake = true
		return s, nil
	case a.Kind == ioa.KindFail && a.Dir == ioa.RT:
		s = s.clone()
		s.awake = false
		return s, nil
	case a.Kind == ioa.KindCrash && a.Dir == ioa.RT:
		return hsRState{}, nil
	case a.Kind == ioa.KindReceivePkt && a.Dir == ioa.TR:
		if _, isSyn := parse1(a.Pkt.Header, "syn"); isSyn {
			s = s.clone()
			if !s.conn {
				// New connection: restart the bit sequence. This is the
				// unprotected initialization that crashes exploit.
				s.conn = true
				s.expect = 0
			}
			s.acks = append(s.acks, SynAckHeader(0))
			return s, nil
		}
		if b, isData := parse1(a.Pkt.Header, "data"); isData {
			if !s.conn {
				return s, nil // data before handshake: ignore
			}
			s = s.clone()
			if b == s.expect {
				s.pending = append(s.pending, a.Pkt.Payload)
				s.expect = 1 - s.expect
			}
			s.acks = append(s.acks, AckHeader(b))
			return s, nil
		}
		return s, nil
	case a.Kind == ioa.KindSendPkt && a.Dir == ioa.RT:
		if !s.awake || len(s.acks) == 0 || !sendPktEnabled(a.Pkt, ctrlPkt(s.acks[0])) {
			return nil, errNotEnabled(r.Name(), a)
		}
		s = s.clone()
		s.acks = s.acks[1:]
		return s, nil
	case a.Kind == ioa.KindReceiveMsg && a.Dir == ioa.TR:
		if len(s.pending) == 0 || s.pending[0] != a.Msg {
			return nil, errNotEnabled(r.Name(), a)
		}
		s = s.clone()
		s.pending = s.pending[1:]
		return s, nil
	default:
		return nil, errNotInSignature(r.Name(), a)
	}
}

func (r *hsReceiver) Enabled(st ioa.State) []ioa.Action {
	s, ok := st.(hsRState)
	if !ok {
		return nil
	}
	var out []ioa.Action
	if len(s.pending) > 0 {
		out = append(out, ioa.ReceiveMsg(ioa.TR, s.pending[0]))
	}
	if s.awake && len(s.acks) > 0 {
		out = append(out, ioa.SendPkt(ioa.RT, ctrlPkt(s.acks[0])))
	}
	return out
}

func (*hsReceiver) ClassOf(a ioa.Action) ioa.Class {
	if a.Kind == ioa.KindReceiveMsg {
		return ClassDeliver
	}
	return ClassAck
}

func (*hsReceiver) Classes() []ioa.Class { return []ioa.Class{ClassDeliver, ClassAck} }
