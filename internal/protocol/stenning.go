package protocol

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ioa"
)

// NewStenning returns Stenning's protocol: an ARQ protocol in which every
// message carries a distinct absolute sequence number and acknowledgements
// carry the receiver's next expected absolute sequence number. Because the
// sequence numbers never wrap, the header set {data/i, ack/i : i ≥ 0} is
// unbounded, and the protocol is correct over arbitrary non-FIFO physical
// channels — the positive counterpart of Theorem 8.5 (see the paper's
// footnote 1 and Section 9: the number of headers used grows linearly with
// the number of messages, which Theorem 8.5 shows cannot be improved to
// any bounded set).
//
// The protocol is message-independent and crashing, so Theorem 7.5 still
// applies to it: the crash-pump adversary defeats it over FIFO channels.
func NewStenning() core.Protocol {
	return core.Protocol{
		Name: "stenning",
		T:    &stnTransmitter{},
		R:    &stnReceiver{},
		Props: core.Properties{
			MessageIndependent: true,
			PayloadOpaque:      true,
			Crashing:           true,
			Headers:            nil, // unbounded header set
			KBound:             1,
			RequiresFIFO:       false,
		},
	}
}

// stnTState is Stenning's transmitter state: base is the absolute sequence
// number of queue[0].
type stnTState struct {
	awake bool
	base  int
	queue []ioa.Message
}

var (
	_ ioa.EquivState          = stnTState{}
	_ ioa.AppendFingerprinter = stnTState{}
)

func (s stnTState) Fingerprint() string { return string(s.AppendFingerprint(nil)) }

func (s stnTState) AppendFingerprint(dst []byte) []byte {
	return appendXmtrFP(dst, "stnT", s.awake, s.base, s.queue)
}

func (s stnTState) EquivFingerprint() string {
	return fmt.Sprintf("stnT{awake=%t base=%d q=%s}", s.awake, s.base, eqMsgs(s.queue))
}

func (s stnTState) clone() stnTState {
	s.queue = cloneMsgs(s.queue)
	return s
}

// stnTransmitter is A^t of Stenning's protocol. It sends the lowest
// unacknowledged message, tagged with its absolute sequence number.
type stnTransmitter struct{}

var _ ioa.Automaton = (*stnTransmitter)(nil)

func (*stnTransmitter) Name() string { return "stenning.T" }

func (*stnTransmitter) Signature() ioa.Signature { return core.TransmitterSignature() }

func (*stnTransmitter) Start() ioa.State { return stnTState{} }

func (s stnTState) wantPkt() (ioa.Packet, bool) {
	if !s.awake || len(s.queue) == 0 {
		return ioa.Packet{}, false
	}
	return dataPkt(DataHeader(s.base), s.queue[0]), true
}

func (t *stnTransmitter) Step(st ioa.State, a ioa.Action) (ioa.State, error) {
	s, ok := st.(stnTState)
	if !ok {
		return nil, errBadState(t.Name(), st)
	}
	switch {
	case a.Kind == ioa.KindWake && a.Dir == ioa.TR:
		s = s.clone()
		s.awake = true
		return s, nil
	case a.Kind == ioa.KindFail && a.Dir == ioa.TR:
		s = s.clone()
		s.awake = false
		return s, nil
	case a.Kind == ioa.KindCrash && a.Dir == ioa.TR:
		return stnTState{}, nil
	case a.Kind == ioa.KindSendMsg && a.Dir == ioa.TR:
		s = s.clone()
		s.queue = append(s.queue, a.Msg)
		return s, nil
	case a.Kind == ioa.KindReceivePkt && a.Dir == ioa.RT:
		j, isAck := parse1(a.Pkt.Header, "ack")
		// Cumulative ack: everything below the absolute value j has been
		// received. Stale acks (j ≤ base) are ignored; reordering cannot
		// forge progress because absolute numbers never wrap.
		if isAck && j > s.base {
			n := j - s.base
			if n > len(s.queue) {
				n = len(s.queue)
			}
			s = s.clone()
			s.queue = s.queue[n:]
			s.base += n
		}
		return s, nil
	case a.Kind == ioa.KindSendPkt && a.Dir == ioa.TR:
		want, sending := s.wantPkt()
		if !sending || !sendPktEnabled(a.Pkt, want) {
			return nil, errNotEnabled(t.Name(), a)
		}
		return s, nil
	default:
		return nil, errNotInSignature(t.Name(), a)
	}
}

func (t *stnTransmitter) Enabled(st ioa.State) []ioa.Action {
	s, ok := st.(stnTState)
	if !ok {
		return nil
	}
	if pkt, sending := s.wantPkt(); sending {
		return []ioa.Action{ioa.SendPkt(ioa.TR, pkt)}
	}
	return nil
}

func (*stnTransmitter) ClassOf(ioa.Action) ioa.Class { return ClassXmit }

func (*stnTransmitter) Classes() []ioa.Class { return []ioa.Class{ClassXmit} }

// stnRState is Stenning's receiver state.
type stnRState struct {
	awake   bool
	expect  int
	acks    []ioa.Header
	pending []ioa.Message
}

var (
	_ ioa.EquivState          = stnRState{}
	_ ioa.AppendFingerprinter = stnRState{}
)

func (s stnRState) Fingerprint() string { return string(s.AppendFingerprint(nil)) }

func (s stnRState) AppendFingerprint(dst []byte) []byte {
	return appendRcvrFP(dst, "stnR", s.awake, s.expect, s.acks, s.pending)
}

func (s stnRState) EquivFingerprint() string {
	return fmt.Sprintf("stnR{awake=%t exp=%d acks=%s pend=%s}",
		s.awake, s.expect, fpHeaders(s.acks), eqMsgs(s.pending))
}

func (s stnRState) clone() stnRState {
	s.acks = cloneHeaders(s.acks)
	s.pending = cloneMsgs(s.pending)
	return s
}

// stnReceiver is A^r of Stenning's protocol: it accepts exactly the next
// expected absolute sequence number and acknowledges cumulatively.
type stnReceiver struct{}

var _ ioa.Automaton = (*stnReceiver)(nil)

func (*stnReceiver) Name() string { return "stenning.R" }

func (*stnReceiver) Signature() ioa.Signature { return core.ReceiverSignature() }

func (*stnReceiver) Start() ioa.State { return stnRState{} }

func (r *stnReceiver) Step(st ioa.State, a ioa.Action) (ioa.State, error) {
	s, ok := st.(stnRState)
	if !ok {
		return nil, errBadState(r.Name(), st)
	}
	switch {
	case a.Kind == ioa.KindWake && a.Dir == ioa.RT:
		s = s.clone()
		s.awake = true
		return s, nil
	case a.Kind == ioa.KindFail && a.Dir == ioa.RT:
		s = s.clone()
		s.awake = false
		return s, nil
	case a.Kind == ioa.KindCrash && a.Dir == ioa.RT:
		return stnRState{}, nil
	case a.Kind == ioa.KindReceivePkt && a.Dir == ioa.TR:
		v, isData := parse1(a.Pkt.Header, "data")
		if !isData {
			return s, nil
		}
		s = s.clone()
		if v == s.expect {
			s.pending = append(s.pending, a.Pkt.Payload)
			s.expect++
		}
		s.acks = append(s.acks, AckHeader(s.expect))
		return s, nil
	case a.Kind == ioa.KindSendPkt && a.Dir == ioa.RT:
		if !s.awake || len(s.acks) == 0 || !sendPktEnabled(a.Pkt, ctrlPkt(s.acks[0])) {
			return nil, errNotEnabled(r.Name(), a)
		}
		s = s.clone()
		s.acks = s.acks[1:]
		return s, nil
	case a.Kind == ioa.KindReceiveMsg && a.Dir == ioa.TR:
		if len(s.pending) == 0 || s.pending[0] != a.Msg {
			return nil, errNotEnabled(r.Name(), a)
		}
		s = s.clone()
		s.pending = s.pending[1:]
		return s, nil
	default:
		return nil, errNotInSignature(r.Name(), a)
	}
}

func (r *stnReceiver) Enabled(st ioa.State) []ioa.Action {
	s, ok := st.(stnRState)
	if !ok {
		return nil
	}
	var out []ioa.Action
	if len(s.pending) > 0 {
		out = append(out, ioa.ReceiveMsg(ioa.TR, s.pending[0]))
	}
	if s.awake && len(s.acks) > 0 {
		out = append(out, ioa.SendPkt(ioa.RT, ctrlPkt(s.acks[0])))
	}
	return out
}

func (*stnReceiver) ClassOf(a ioa.Action) ioa.Class {
	if a.Kind == ioa.KindReceiveMsg {
		return ClassDeliver
	}
	return ClassAck
}

func (*stnReceiver) Classes() []ioa.Class { return []ioa.Class{ClassDeliver, ClassAck} }
