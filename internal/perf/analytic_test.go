package perf

import (
	"math"
	"testing"
)

// TestAnalyticStopAndWaitMatchesSimulation validates the simulator against
// the closed-form ARQ analysis across loss rates and delays: simulated
// stop-and-wait goodput must track q/(q·RTT + (1-q)·RTO) within a modest
// tolerance (the formula neglects pipelining of the timeout with the next
// attempt, so a few percent of drift is expected).
func TestAnalyticStopAndWaitMatchesSimulation(t *testing.T) {
	cases := []GoodputConfig{
		{Window: 1, Delay: 5, Loss: 0, Ticks: 60000, Seed: 3},
		{Window: 1, Delay: 5, Loss: 0.05, Ticks: 60000, Seed: 3},
		{Window: 1, Delay: 5, Loss: 0.2, Ticks: 60000, Seed: 3},
		{Window: 1, Delay: 12, Loss: 0.1, Ticks: 60000, Seed: 4},
		{Window: 1, Delay: 2, Loss: 0.3, Ticks: 60000, Seed: 5},
	}
	for _, cfg := range cases {
		sim, err := SimulateGoodput(cfg)
		if err != nil {
			t.Fatal(err)
		}
		analytic := AnalyticStopAndWait(cfg)
		relErr := math.Abs(sim.Goodput-analytic) / analytic
		if relErr > 0.2 {
			t.Errorf("delay=%d loss=%.2f: simulated %.4f vs analytic %.4f (%.0f%% off)",
				cfg.Delay, cfg.Loss, sim.Goodput, analytic, 100*relErr)
		} else {
			t.Logf("delay=%d loss=%.2f: simulated %.4f vs analytic %.4f (%.1f%% off)",
				cfg.Delay, cfg.Loss, sim.Goodput, analytic, 100*relErr)
		}
	}
}

func TestAnalyticStopAndWaitEdgeCases(t *testing.T) {
	if g := AnalyticStopAndWait(GoodputConfig{Window: 1, Delay: 0, Loss: 0}); g <= 0 || g > 1 {
		t.Errorf("zero-delay goodput = %f", g)
	}
	if g := AnalyticStopAndWait(GoodputConfig{Window: 1, Delay: 5, Loss: 1}); g != 0 {
		t.Errorf("total loss should give zero goodput, got %f", g)
	}
	// Explicit RTO is honoured.
	a := AnalyticStopAndWait(GoodputConfig{Window: 1, Delay: 5, Loss: 0.2, RTO: 100})
	b := AnalyticStopAndWait(GoodputConfig{Window: 1, Delay: 5, Loss: 0.2, RTO: 20})
	if a >= b {
		t.Errorf("longer RTO must lower analytic goodput: %f vs %f", a, b)
	}
}
