package perf

// AnalyticStopAndWait returns the closed-form goodput prediction for the
// window-1 (alternating-bit / stop-and-wait) discipline on the simulated
// link: each attempt succeeds when both the data packet and its
// acknowledgement survive (probability q = (1-p)²), a successful cycle
// takes one round trip (2·delay ticks), and a failed one costs the
// retransmission timeout. The expected ticks per message is then
//
//	E[T] = (q·RTT + (1-q)·RTO) / q
//
// and the goodput is 1/E[T]. The E6 validation test checks the simulator
// against this prediction — the standard ARQ textbook analysis, which the
// simulation should track within a few percent.
func AnalyticStopAndWait(cfg GoodputConfig) float64 {
	rtt := float64(2 * cfg.Delay)
	if rtt < 1 {
		rtt = 1
	}
	rto := float64(cfg.RTO)
	if rto <= 0 {
		rto = float64(2*cfg.Delay + 4)
	}
	q := (1 - cfg.Loss) * (1 - cfg.Loss)
	if q <= 0 {
		return 0
	}
	expTicks := (q*rtt + (1-q)*rto) / q
	return 1 / expTicks
}
