// Package perf contains the quantitative context experiments around the
// paper's impossibility results: a discrete-time ARQ link simulator for
// the goodput-versus-window-size sweeps that motivate sliding window
// protocols (the paper's Section 1 discussion of HDLC/SDLC/LAPB), and a
// header-growth harness for Stenning's protocol showing the linear header
// consumption that Theorem 8.5 proves unavoidable over non-FIFO channels.
//
// Unlike the rest of the repository, the goodput simulator is
// time-stepped rather than I/O-automaton based: the untimed model has no
// notion of latency or timeout, and the goodput experiment is about
// exactly those. The protocol logic (Go-Back-N with cumulative acks)
// mirrors internal/protocol's automata.
package perf

import (
	"errors"
	"fmt"
	"math/rand"
)

// Discipline selects the retransmission strategy of the simulated ARQ
// transmitter.
type Discipline int

// The simulated ARQ disciplines. GoBackN resends the whole window after a
// timeout; SelectiveRepeat resends only unacknowledged packets and the
// receiver buffers out-of-order arrivals.
const (
	GoBackN Discipline = iota
	SelectiveRepeat
)

// String names the discipline.
func (d Discipline) String() string {
	if d == SelectiveRepeat {
		return "sr"
	}
	return "gbn"
}

// GoodputConfig parameterises one simulated ARQ run over a lossy duplex
// link with fixed one-way latency. Window 1 is the alternating-bit
// protocol's stop-and-wait behaviour (both disciplines coincide there).
type GoodputConfig struct {
	// Discipline selects Go-Back-N (default) or Selective Repeat.
	Discipline Discipline
	// Window is the sliding window size W ≥ 1.
	Window int
	// Delay is the one-way link latency in ticks (RTT = 2*Delay).
	Delay int
	// Loss is the independent per-packet loss probability, applied to data
	// and acknowledgement packets alike.
	Loss float64
	// RTO is the retransmission timeout in ticks; zero selects a default
	// slightly above one RTT.
	RTO int
	// Ticks is the simulated duration; the link transmits at most one data
	// packet per tick (unit capacity).
	Ticks int
	// Seed seeds the loss process.
	Seed int64
}

// GoodputResult reports one simulated run.
type GoodputResult struct {
	Config GoodputConfig
	// Delivered is the number of distinct messages delivered in order.
	Delivered int
	// Sent counts data packet transmissions, including retransmissions.
	Sent int
	// Retransmissions counts data packets sent more than once.
	Retransmissions int
	// Goodput is Delivered divided by Ticks: messages per tick of link
	// time, in [0, 1].
	Goodput float64
	// Efficiency is Delivered divided by Sent: the fraction of
	// transmissions that were useful.
	Efficiency float64
}

// String renders one result row.
func (r GoodputResult) String() string {
	return fmt.Sprintf("%-3s W=%-3d delay=%-3d loss=%.2f  goodput=%.4f  efficiency=%.3f  sent=%d redundant=%d",
		r.Config.Discipline, r.Config.Window, r.Config.Delay, r.Config.Loss, r.Goodput, r.Efficiency, r.Sent, r.Retransmissions)
}

// ErrBadConfig reports invalid goodput parameters.
var ErrBadConfig = errors.New("perf: invalid goodput configuration")

// inFlight is a packet travelling through the simulated link.
type inFlight struct {
	arriveAt int
	seq      int
}

// SimulateGoodput runs the discrete-time ARQ simulation and reports
// goodput. The transmitter has an unbounded backlog of fresh messages; the
// receiver delivers in order (buffering out-of-order arrivals under
// Selective Repeat) and acknowledges cumulatively (Go-Back-N) or
// individually (Selective Repeat).
func SimulateGoodput(cfg GoodputConfig) (GoodputResult, error) {
	if cfg.Window < 1 || cfg.Delay < 0 || cfg.Loss < 0 || cfg.Loss >= 1 || cfg.Ticks <= 0 {
		return GoodputResult{}, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	if cfg.Discipline == SelectiveRepeat {
		return simulateSR(cfg)
	}
	rto := cfg.RTO
	if rto <= 0 {
		rto = 2*cfg.Delay + 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var (
		dataQ, ackQ []inFlight // packets in flight, in send order
		base        int        // lowest unacknowledged sequence
		nextSeq     int        // next fresh sequence to send
		resendFrom  = -1       // go-back pointer after a timeout (-1: none)
		lastSent    = make(map[int]bool)
		expect      int // receiver's next expected sequence
		res         GoodputResult
		timer       int // ticks since the window base last advanced
	)
	res.Config = cfg

	deliverDue := func(q []inFlight, now int) ([]inFlight, []int) {
		var arrived []int
		rest := q[:0]
		for _, f := range q {
			if f.arriveAt <= now {
				arrived = append(arrived, f.seq)
			} else {
				rest = append(rest, f)
			}
		}
		return rest, arrived
	}

	for now := 0; now < cfg.Ticks; now++ {
		// Acks arriving at the transmitter.
		var acks []int
		ackQ, acks = deliverDue(ackQ, now)
		for _, a := range acks {
			if a > base {
				base = a
				timer = 0
				if resendFrom >= 0 && resendFrom < base {
					resendFrom = base
				}
			}
		}

		// Timeout: go back to the window base.
		if nextSeq > base {
			timer++
			if timer > rto {
				resendFrom = base
				timer = 0
			}
		} else {
			timer = 0
		}

		// Transmit one data packet this tick: a retransmission if we are
		// going back, otherwise a fresh packet if the window allows.
		var seq = -1
		switch {
		case resendFrom >= 0 && resendFrom < nextSeq:
			seq = resendFrom
			resendFrom++
			if resendFrom >= nextSeq {
				resendFrom = -1
			}
		case nextSeq < base+cfg.Window:
			seq = nextSeq
			nextSeq++
		}
		if seq >= 0 {
			res.Sent++
			if lastSent[seq] {
				res.Retransmissions++
			}
			lastSent[seq] = true
			if rng.Float64() >= cfg.Loss {
				dataQ = append(dataQ, inFlight{arriveAt: now + cfg.Delay, seq: seq})
			}
		}

		// Data arriving at the receiver; cumulative ack per arrival.
		var arrivals []int
		dataQ, arrivals = deliverDue(dataQ, now)
		for _, s := range arrivals {
			if s == expect {
				expect++
				res.Delivered++
			}
			if rng.Float64() >= cfg.Loss {
				ackQ = append(ackQ, inFlight{arriveAt: now + cfg.Delay, seq: expect})
			}
		}
	}

	res.Goodput = float64(res.Delivered) / float64(cfg.Ticks)
	if res.Sent > 0 {
		res.Efficiency = float64(res.Delivered) / float64(res.Sent)
	}
	return res, nil
}

// simulateSR is the Selective-Repeat variant: the receiver buffers
// out-of-order arrivals within its window and acknowledges each received
// sequence individually; the transmitter retransmits only unacknowledged,
// timed-out packets.
func simulateSR(cfg GoodputConfig) (GoodputResult, error) {
	rto := cfg.RTO
	if rto <= 0 {
		rto = 2*cfg.Delay + 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var (
		dataQ, ackQ []inFlight
		base        int
		nextSeq     int
		acked       = map[int]bool{}
		lastSent    = map[int]int{} // seq → tick of last transmission
		everSent    = map[int]bool{}
		expect      int
		buffered    = map[int]bool{}
		res         GoodputResult
	)
	res.Config = cfg

	for now := 0; now < cfg.Ticks; now++ {
		// Individual acks arriving at the transmitter.
		var acks []int
		ackQ, acks = deliverInFlight(&ackQ, now)
		for _, s := range acks {
			if s >= base {
				acked[s] = true
			}
		}
		for acked[base] {
			delete(acked, base)
			delete(lastSent, base)
			delete(everSent, base)
			base++
		}

		// Transmit one packet this tick: the oldest timed-out
		// unacknowledged packet, else a fresh one if the window allows.
		seq := -1
		for s := base; s < nextSeq; s++ {
			if !acked[s] && now-lastSent[s] > rto {
				seq = s
				break
			}
		}
		if seq < 0 && nextSeq < base+cfg.Window {
			seq = nextSeq
			nextSeq++
		}
		if seq >= 0 {
			res.Sent++
			if everSent[seq] {
				res.Retransmissions++
			}
			everSent[seq] = true
			lastSent[seq] = now
			if rng.Float64() >= cfg.Loss {
				dataQ = append(dataQ, inFlight{arriveAt: now + cfg.Delay, seq: seq})
			}
		}

		// Data arriving at the receiver: buffer, drain the in-order
		// prefix, ack the arrival individually.
		var arrivals []int
		dataQ, arrivals = deliverInFlight(&dataQ, now)
		for _, s := range arrivals {
			if s >= expect {
				buffered[s] = true
			}
			for buffered[expect] {
				delete(buffered, expect)
				expect++
				res.Delivered++
			}
			if rng.Float64() >= cfg.Loss {
				ackQ = append(ackQ, inFlight{arriveAt: now + cfg.Delay, seq: s})
			}
		}
	}

	res.Goodput = float64(res.Delivered) / float64(cfg.Ticks)
	if res.Sent > 0 {
		res.Efficiency = float64(res.Delivered) / float64(res.Sent)
	}
	return res, nil
}

// deliverInFlight splits a flight queue into the not-yet-arrived remainder
// and the sequence numbers that arrive now.
func deliverInFlight(q *[]inFlight, now int) ([]inFlight, []int) {
	var arrived []int
	rest := (*q)[:0]
	for _, f := range *q {
		if f.arriveAt <= now {
			arrived = append(arrived, f.seq)
		} else {
			rest = append(rest, f)
		}
	}
	return rest, arrived
}

// SweepGoodput runs SimulateGoodput across windows × loss rates, holding
// delay, duration and discipline fixed: the E6 table. Results are ordered
// loss-major.
func SweepGoodput(windows []int, losses []float64, delay, ticks int, seed int64, disc ...Discipline) ([]GoodputResult, error) {
	d := GoBackN
	if len(disc) > 0 {
		d = disc[0]
	}
	out := make([]GoodputResult, 0, len(windows)*len(losses))
	for _, p := range losses {
		for _, w := range windows {
			r, err := SimulateGoodput(GoodputConfig{
				Discipline: d, Window: w, Delay: delay, Loss: p, Ticks: ticks, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}
