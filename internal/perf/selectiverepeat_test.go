package perf

import "testing"

func TestSRGoodputLossless(t *testing.T) {
	// Without loss the two disciplines behave identically: the window
	// paces the pipe.
	for _, w := range []int{1, 8, 16} {
		gbn, err := SimulateGoodput(GoodputConfig{Discipline: GoBackN, Window: w, Delay: 5, Ticks: 20000, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		sr, err := SimulateGoodput(GoodputConfig{Discipline: SelectiveRepeat, Window: w, Delay: 5, Ticks: 20000, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if diff := sr.Goodput - gbn.Goodput; diff > 0.05 || diff < -0.05 {
			t.Errorf("W=%d lossless: sr=%.4f vs gbn=%.4f differ too much", w, sr.Goodput, gbn.Goodput)
		}
		if sr.Retransmissions != 0 {
			t.Errorf("W=%d lossless SR retransmitted %d packets", w, sr.Retransmissions)
		}
	}
}

// TestSRBeatsGBNUnderLoss is the crossover experiment: with a large
// window and nontrivial loss, Selective Repeat's per-packet recovery
// wastes far fewer transmissions than Go-Back-N's whole-window resend, so
// both its goodput and its efficiency win.
func TestSRBeatsGBNUnderLoss(t *testing.T) {
	cfg := GoodputConfig{Window: 16, Delay: 8, Loss: 0.1, Ticks: 40000, Seed: 5}
	gbnCfg, srCfg := cfg, cfg
	gbnCfg.Discipline = GoBackN
	srCfg.Discipline = SelectiveRepeat
	gbn, err := SimulateGoodput(gbnCfg)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := SimulateGoodput(srCfg)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Goodput <= gbn.Goodput {
		t.Errorf("SR should beat GBN under loss: sr=%.4f gbn=%.4f", sr.Goodput, gbn.Goodput)
	}
	if sr.Efficiency <= gbn.Efficiency {
		t.Errorf("SR should be more efficient under loss: sr=%.3f gbn=%.3f", sr.Efficiency, gbn.Efficiency)
	}
	t.Logf("loss=0.1 W=16: SR goodput %.4f (eff %.3f) vs GBN %.4f (eff %.3f)",
		sr.Goodput, sr.Efficiency, gbn.Goodput, gbn.Efficiency)
}

func TestSRGoodputDeterministic(t *testing.T) {
	cfg := GoodputConfig{Discipline: SelectiveRepeat, Window: 8, Delay: 4, Loss: 0.2, Ticks: 10000, Seed: 9}
	a, err := SimulateGoodput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateGoodput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different results")
	}
}

func TestSweepGoodputDiscipline(t *testing.T) {
	rows, err := SweepGoodput([]int{4}, []float64{0.1}, 4, 5000, 1, SelectiveRepeat)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Config.Discipline != SelectiveRepeat {
		t.Errorf("sweep ignored the discipline: %+v", rows)
	}
	if rows[0].String() == "" || rows[0].Config.Discipline.String() != "sr" {
		t.Error("rendering wrong")
	}
	if GoBackN.String() != "gbn" {
		t.Error("GoBackN.String wrong")
	}
}
