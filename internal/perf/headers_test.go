package perf

import "testing"

func TestBitsFor(t *testing.T) {
	tests := []struct{ v, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1023, 10}, {1024, 11},
	}
	for _, tt := range tests {
		if got := bitsFor(tt.v); got != tt.want {
			t.Errorf("bitsFor(%d) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

// TestStenningHeaderGrowthLinear is experiment E4: delivering n messages
// over the reordering channel uses Θ(n) distinct data headers — exactly
// one per message, since Stenning assigns each message its own absolute
// sequence number — while the behavior stays DL-correct.
func TestStenningHeaderGrowthLinear(t *testing.T) {
	prevHeaders := 0
	for _, n := range []int{5, 20, 60} {
		res, err := MeasureStenningHeaderGrowth(n, 11)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !res.SpecOK {
			t.Errorf("n=%d: behavior violated DL", n)
		}
		if res.DistinctDataHeaders != n {
			t.Errorf("n=%d: distinct data headers = %d, want exactly n", n, res.DistinctDataHeaders)
		}
		if res.MaxSeq != n-1 {
			t.Errorf("n=%d: max seq = %d, want n-1", n, res.MaxSeq)
		}
		if res.DistinctDataHeaders <= prevHeaders {
			t.Errorf("header use did not grow with n")
		}
		prevHeaders = res.DistinctDataHeaders
		t.Logf("%s", res)
	}
}
