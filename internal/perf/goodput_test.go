package perf

import (
	"errors"
	"testing"
)

func TestSimulateGoodputValidation(t *testing.T) {
	bad := []GoodputConfig{
		{Window: 0, Delay: 1, Ticks: 100},
		{Window: 1, Delay: -1, Ticks: 100},
		{Window: 1, Delay: 1, Ticks: 0},
		{Window: 1, Delay: 1, Ticks: 100, Loss: 1.0},
		{Window: 1, Delay: 1, Ticks: 100, Loss: -0.1},
	}
	for _, cfg := range bad {
		if _, err := SimulateGoodput(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("config %+v: err = %v, want ErrBadConfig", cfg, err)
		}
	}
}

func TestGoodputLosslessStopAndWait(t *testing.T) {
	// W=1, delay d, no loss: one message per RTT(ish). With delay 5 the
	// cycle is roughly 2*delay ticks, so goodput ≈ 0.1.
	r, err := SimulateGoodput(GoodputConfig{Window: 1, Delay: 5, Ticks: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Goodput < 0.07 || r.Goodput > 0.13 {
		t.Errorf("stop-and-wait goodput = %.4f, want ≈ 1/RTT = 0.1", r.Goodput)
	}
	if r.Retransmissions != 0 {
		t.Errorf("lossless run retransmitted %d packets", r.Retransmissions)
	}
}

func TestGoodputWindowSaturatesPipe(t *testing.T) {
	// W ≥ RTT: the pipe is full; goodput approaches 1 without loss.
	r, err := SimulateGoodput(GoodputConfig{Window: 16, Delay: 5, Ticks: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Goodput < 0.95 {
		t.Errorf("saturating window goodput = %.4f, want ≈ 1", r.Goodput)
	}
}

func TestGoodputMonotoneInWindow(t *testing.T) {
	// The motivating E6 shape: goodput is (weakly) increasing in window
	// size, at any loss rate, up to noise. Use generous tolerance.
	for _, loss := range []float64{0, 0.05, 0.2} {
		prev := -1.0
		for _, w := range []int{1, 2, 4, 8, 16} {
			r, err := SimulateGoodput(GoodputConfig{Window: w, Delay: 8, Loss: loss, Ticks: 30000, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if r.Goodput < prev-0.05 {
				t.Errorf("loss=%.2f: goodput dropped from %.4f (W/2) to %.4f (W=%d)", loss, prev, r.Goodput, w)
			}
			prev = r.Goodput
		}
	}
}

func TestGoodputDegradesWithLoss(t *testing.T) {
	clean, err := SimulateGoodput(GoodputConfig{Window: 8, Delay: 5, Loss: 0, Ticks: 30000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := SimulateGoodput(GoodputConfig{Window: 8, Delay: 5, Loss: 0.3, Ticks: 30000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Goodput >= clean.Goodput {
		t.Errorf("goodput did not degrade under loss: %.4f vs %.4f", lossy.Goodput, clean.Goodput)
	}
	if lossy.Retransmissions == 0 {
		t.Error("lossy run should retransmit")
	}
	if lossy.Efficiency >= 1 {
		t.Errorf("lossy efficiency = %.3f, want < 1", lossy.Efficiency)
	}
}

func TestGoodputDeterministicPerSeed(t *testing.T) {
	cfg := GoodputConfig{Window: 4, Delay: 3, Loss: 0.1, Ticks: 5000, Seed: 42}
	a, err := SimulateGoodput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateGoodput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different results:\n%v\n%v", a, b)
	}
}

func TestSweepGoodputShape(t *testing.T) {
	rows, err := SweepGoodput([]int{1, 4}, []float64{0, 0.1}, 4, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("sweep produced %d rows, want 4", len(rows))
	}
	// Row order is loss-major.
	if rows[0].Config.Loss != 0 || rows[3].Config.Loss != 0.1 {
		t.Errorf("row ordering wrong: %+v", rows)
	}
	if rows[0].String() == "" {
		t.Error("empty row rendering")
	}
}
