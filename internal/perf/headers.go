package perf

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/spec"
)

// HeaderGrowthResult records how many distinct headers Stenning's protocol
// consumed to deliver n messages over the non-FIFO permissive channel —
// experiment E4. Theorem 8.5 shows the growth cannot be avoided: any
// protocol with a *bounded* header set fails over such channels, and the
// paper's Section 9 remarks that Stenning's linear growth is the known
// upper bound (sublinear being conjectured impossible).
type HeaderGrowthResult struct {
	Messages int
	// DistinctDataHeaders counts the data headers used on the t→r channel.
	DistinctDataHeaders int
	// MaxSeq is the largest absolute sequence number on any packet.
	MaxSeq int
	// HeaderBits is the wire width needed for MaxSeq: ceil(log2(MaxSeq+1)).
	HeaderBits int
	// SpecOK reports that the quiescent behavior satisfied the full DL
	// specification (it always should; recorded for the experiment log).
	SpecOK bool
}

// String renders one result row.
func (r HeaderGrowthResult) String() string {
	return fmt.Sprintf("n=%-6d distinct-data-headers=%-6d max-seq=%-6d header-bits=%-2d specOK=%t",
		r.Messages, r.DistinctDataHeaders, r.MaxSeq, r.HeaderBits, r.SpecOK)
}

// MeasureStenningHeaderGrowth delivers n messages with Stenning's protocol
// over the non-FIFO permissive channels under a randomly reordering
// scheduler, then reports the header consumption.
func MeasureStenningHeaderGrowth(n int, seed int64) (HeaderGrowthResult, error) {
	sys, err := core.NewSystem(protocol.NewStenning(), false)
	if err != nil {
		return HeaderGrowthResult{}, err
	}
	r := sim.NewRunner(sys)
	if err := r.WakeBoth(); err != nil {
		return HeaderGrowthResult{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if err := r.Input(ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("hg-%d", i)))); err != nil {
			return HeaderGrowthResult{}, err
		}
		// Interleave random scheduling with the input stream so the
		// channel reorders aggressively while the window stays small.
		if _, err := r.RunFair(sim.RunConfig{MaxSteps: 30 + rng.Intn(30), Rand: rng}); err != nil && !isStepLimit(err) {
			return HeaderGrowthResult{}, err
		}
	}
	quiescent, err := r.RunFair(sim.RunConfig{MaxSteps: 200 * (n + 10)})
	if err != nil {
		return HeaderGrowthResult{}, err
	}
	if !quiescent {
		return HeaderGrowthResult{}, fmt.Errorf("perf: stenning run did not quiesce for n=%d", n)
	}

	res := HeaderGrowthResult{Messages: n}
	seen := map[ioa.Header]bool{}
	for _, a := range r.Schedule() {
		if a.Kind != ioa.KindSendPkt || a.Dir != ioa.TR {
			continue
		}
		if s, ok := parseDataHeader(a.Pkt.Header); ok {
			seen[a.Pkt.Header] = true
			if s > res.MaxSeq {
				res.MaxSeq = s
			}
		}
	}
	res.DistinctDataHeaders = len(seen)
	res.HeaderBits = bitsFor(res.MaxSeq)
	res.SpecOK = spec.CheckDL(r.Behavior(), ioa.TR).OK()
	return res, nil
}

func parseDataHeader(h ioa.Header) (int, bool) {
	tag, args, ok := protocol.ParseHeader(h)
	if !ok || tag != "data" || len(args) != 1 {
		return 0, false
	}
	return args[0], true
}

// bitsFor returns the number of bits needed to represent v.
func bitsFor(v int) int {
	if v <= 0 {
		return 1
	}
	return int(math.Floor(math.Log2(float64(v)))) + 1
}

func isStepLimit(err error) bool {
	return errors.Is(err, sim.ErrStepLimit)
}
