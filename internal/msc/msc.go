// Package msc renders schedules as ASCII message sequence charts: two
// station lanes (t and r) with packet arrows between them, environment
// events at the edges, and channel residency made visible by separate
// send and delivery rows. It is the human-inspection companion to the
// machine-checked verdicts — the constructed counterexamples of the
// adversary package and the shortest traces of the explorer read best as
// charts.
package msc

import (
	"fmt"
	"strings"

	"repro/internal/ioa"
)

// Options configures rendering.
type Options struct {
	// LaneWidth is the width of the middle (channel) column; 0 selects a
	// width fitting the longest label.
	LaneWidth int
	// HideInternal drops internal actions (channel lose events).
	HideInternal bool
	// Annotate, when non-nil, returns an extra note for the i-th action
	// (0-based index into the schedule); a non-empty result is appended
	// to the row in brackets. Trace tooling uses it to tag rows with
	// metadata the schedule itself does not carry (global step index,
	// wall-clock offset).
	Annotate func(i int, a ioa.Action) string
}

// Render returns the chart for a schedule. Actions the chart cannot
// attribute (invalid ones) render as plain rows.
func Render(beta ioa.Schedule, opts Options) string {
	width := opts.LaneWidth
	if width == 0 {
		width = 12
		for _, a := range beta {
			if l := len(label(a)) + 8; l > width {
				width = l
			}
		}
	}
	var b strings.Builder
	header := fmt.Sprintf("%4s  %-3s %s %3s\n", "", "t", center("", width), "r")
	b.WriteString(header)
	for i, a := range beta {
		if opts.HideInternal && a.Kind == ioa.KindInternal {
			continue
		}
		line := row(a, width)
		if opts.Annotate != nil {
			if ann := opts.Annotate(i, a); ann != "" {
				line += "  [" + ann + "]"
			}
		}
		fmt.Fprintf(&b, "%4d  %s\n", i+1, line)
	}
	return b.String()
}

// label is the short name shown for an action.
func label(a ioa.Action) string {
	switch a.Kind {
	case ioa.KindSendMsg, ioa.KindReceiveMsg:
		return fmt.Sprintf("%q", string(a.Msg))
	case ioa.KindSendPkt, ioa.KindReceivePkt:
		return a.Pkt.String()
	case ioa.KindWake, ioa.KindFail, ioa.KindCrash:
		return a.Kind.String()
	case ioa.KindInternal:
		return a.Name + " " + a.Pkt.String()
	default:
		return a.String()
	}
}

func center(s string, width int) string {
	if len(s) >= width {
		return s
	}
	left := (width - len(s)) / 2
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", width-len(s)-left)
}

func arrow(s string, width int, rightward bool) string {
	body := " " + s + " "
	pad := width - len(body) - 1
	if pad < 2 {
		pad = 2
	}
	if rightward {
		return strings.Repeat("-", pad/2) + body + strings.Repeat("-", pad-pad/2) + ">"
	}
	return "<" + strings.Repeat("-", pad/2) + body + strings.Repeat("-", pad-pad/2)
}

// row renders one action as a chart line: a transmitter-lane mark, the
// channel column, and a receiver-lane mark.
func row(a ioa.Action, width int) string {
	const (
		tMark = "│"
		rMark = "│"
	)
	mid := center("", width)
	tCol, rCol := tMark, rMark
	var note string
	switch a.Kind {
	case ioa.KindSendMsg:
		tCol = "◆"
		note = "send_msg " + label(a)
	case ioa.KindReceiveMsg:
		rCol = "◆"
		note = "receive_msg " + label(a)
	case ioa.KindSendPkt:
		if a.Dir == ioa.TR {
			tCol = "●"
			mid = arrow(label(a), width, true)
			note = "sent"
		} else {
			rCol = "●"
			mid = arrow(label(a), width, false)
			note = "sent"
		}
	case ioa.KindReceivePkt:
		if a.Dir == ioa.TR {
			rCol = "●"
			mid = center("~> "+label(a), width)
			note = "delivered"
		} else {
			tCol = "●"
			mid = center(label(a)+" <~", width)
			note = "delivered"
		}
	case ioa.KindWake, ioa.KindFail, ioa.KindCrash:
		if stationOf(a.Dir) == ioa.T {
			tCol = "✱"
			note = a.Kind.String() + "^{t,r}"
		} else {
			rCol = "✱"
			note = a.Kind.String() + "^{r,t}"
		}
	case ioa.KindInternal:
		mid = center("x "+label(a), width)
		note = "lost"
	default:
		note = a.String()
	}
	return fmt.Sprintf("%-3s %s %-3s  %s", tCol, mid, rCol, note)
}

// stationOf maps a status-event direction to the station it concerns:
// wake/fail/crash^{t,r} belong to the transmitter, ^{r,t} to the receiver.
func stationOf(d ioa.Dir) ioa.Station {
	return d.From
}
