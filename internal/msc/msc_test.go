package msc

import (
	"strings"
	"testing"

	"repro/internal/ioa"
)

func sampleSchedule() ioa.Schedule {
	p1 := ioa.Packet{ID: 1, Header: "data/0", Payload: "m1"}
	ack := ioa.Packet{ID: 2, Header: "ack/0"}
	return ioa.Schedule{
		ioa.Wake(ioa.TR),
		ioa.Wake(ioa.RT),
		ioa.SendMsg(ioa.TR, "m1"),
		ioa.SendPkt(ioa.TR, p1),
		ioa.ReceivePkt(ioa.TR, p1),
		ioa.ReceiveMsg(ioa.TR, "m1"),
		ioa.SendPkt(ioa.RT, ack),
		ioa.ReceivePkt(ioa.RT, ack),
		ioa.Crash(ioa.RT),
		ioa.Action{Kind: ioa.KindInternal, Name: "lose^{t,r}", Pkt: p1},
	}
}

func TestRenderContainsAllEvents(t *testing.T) {
	out := Render(sampleSchedule(), Options{})
	for _, frag := range []string{
		`send_msg "m1"`,
		`receive_msg "m1"`,
		"#1[data/0|m1]",
		"#2[ack/0]",
		"wake^{t,r}",
		"wake^{r,t}",
		"crash^{r,t}",
		"lost",
		"sent",
		"delivered",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("chart missing %q:\n%s", frag, out)
		}
	}
	// Ten events → ten numbered rows plus the header.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 11 {
		t.Errorf("chart has %d lines, want 11:\n%s", len(lines), out)
	}
}

func TestRenderArrowDirections(t *testing.T) {
	out := Render(sampleSchedule(), Options{})
	// t→r data flows rightward, r→t acks leftward.
	if !strings.Contains(out, "#1[data/0|m1] ") || !strings.Contains(out, ">") {
		t.Errorf("no rightward data arrow:\n%s", out)
	}
	ackLine := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "#2[ack/0]") && strings.Contains(l, "sent") {
			ackLine = l
		}
	}
	if ackLine == "" || !strings.Contains(ackLine, "<") {
		t.Errorf("ack send should render a leftward arrow: %q", ackLine)
	}
}

func TestRenderHideInternal(t *testing.T) {
	out := Render(sampleSchedule(), Options{HideInternal: true})
	if strings.Contains(out, "lost") {
		t.Errorf("internal action rendered despite HideInternal:\n%s", out)
	}
}

func TestRenderCustomWidthAndEmpty(t *testing.T) {
	if out := Render(nil, Options{}); !strings.Contains(out, "t") || !strings.Contains(out, "r") {
		t.Errorf("empty chart should still have a header: %q", out)
	}
	wide := Render(sampleSchedule(), Options{LaneWidth: 60})
	narrow := Render(sampleSchedule(), Options{LaneWidth: 20})
	if len(wide) <= len(narrow) {
		t.Error("LaneWidth has no effect")
	}
}

func TestRenderInvalidAction(t *testing.T) {
	out := Render(ioa.Schedule{{}}, Options{})
	if !strings.Contains(out, "invalid-action") {
		t.Errorf("invalid action should fall back to String():\n%s", out)
	}
}

// TestRenderAnnotate is the golden test for the Options.Annotate hook:
// annotations appear bracketed at the end of exactly the rows the hook
// returns text for, indexed by schedule position.
func TestRenderAnnotate(t *testing.T) {
	sched := ioa.Schedule{
		ioa.Wake(ioa.TR),
		ioa.SendMsg(ioa.TR, "m1"),
		ioa.ReceiveMsg(ioa.TR, "m1"),
	}
	out := Render(sched, Options{
		LaneWidth: 12,
		Annotate: func(i int, a ioa.Action) string {
			if a.Kind == ioa.KindReceiveMsg {
				return "step 3 @+42µs"
			}
			if i == 0 {
				return "start"
			}
			return ""
		},
	})
	want := "" +
		"      t                  r\n" +
		"   1  ✱                │    wake^{t,r}  [start]\n" +
		"   2  ◆                │    send_msg \"m1\"\n" +
		"   3  │                ◆    receive_msg \"m1\"  [step 3 @+42µs]\n"
	if out != want {
		t.Errorf("annotated chart mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
}
