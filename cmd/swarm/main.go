// Command swarm runs the seeded random-execution conformance harness: it
// drives every selected protocol, composed with each channel variant it
// claims to work over, through many fault-injected executions (packet
// loss, reordering, duplication, medium outages, host crashes) and checks
// every behavior against the data link and physical layer specifications.
//
// Equal seeds give byte-identical schedules and summaries, so a reported
// violation is a reproducible artifact: the harness shrinks the first
// violating walk per configuration to a minimal counterexample
// (delta-debugging through runner snapshots) and, with -corpus, persists
// it as a regression entry that internal/swarm's TestCorpusReplay
// re-checks forever.
//
// Examples:
//
//	swarm -seeds 200 -steps 400                          # full expect-correct sweep
//	swarm -protocols abp-stuck -seeds 50 -corpus out/    # find, shrink and persist a bug
//	swarm -protocols gbn,sr -faults loss,fail -workers 8 # focused sweep
//
// The summary is printed as JSON; the exit status is 1 when any
// specification violation was found and 0 otherwise. SIGINT/SIGTERM stop
// the sweep gracefully: in-flight walks finish, the summary (marked
// "interrupted", violations included) is printed and the obs trace and
// metrics are flushed, with exit status 3 — unless violations were found,
// which still exits 1. With -trace the
// sweep emits a JSONL event stream (see internal/obs and cmd/obsreport);
// with -metrics the final counter/gauge/histogram snapshot is written as
// JSON ("-" for stderr); with -snapshot-every the trace also carries
// periodic metrics-snapshot events that obsreport renders as a
// per-interval table. None of these influence the summary, which stays
// byte-identical for equal configurations. Long sweeps print a throttled
// progress line on stderr either way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/swarm"
)

// exitInterrupted is the distinct status for a gracefully stopped sweep
// (mirroring cmd/explore's convention).
const exitInterrupted = 3

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swarm:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// walkProgress returns an OnWalk hook printing a throttled (~1 s)
// progress line; it is called concurrently from walk workers, hence the
// mutex.
func walkProgress(w io.Writer) func(done, total int) {
	var mu sync.Mutex
	last := time.Now()
	return func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if time.Since(last) < time.Second {
			return
		}
		last = time.Now()
		fmt.Fprintf(w, "swarm: %d/%d walks\n", done, total)
	}
}

// writeMetrics encodes the snapshot as indented JSON to path ("-" for
// stderr).
func writeMetrics(path string, snap obs.Snapshot) error {
	if path == "-" {
		return snap.WriteJSON(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// run executes one invocation, writing the JSON summary to out. It
// returns 1 (with nil error) when the sweep found violations, so main
// can distinguish "bug found" from "harness failed".
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("swarm", flag.ContinueOnError)
	var (
		protocols = fs.String("protocols", strings.Join(protocol.Names(), ","),
			fmt.Sprintf("comma-separated protocols (%v; abp-stuck is the known-bad target)", protocol.Names()))
		faults  = fs.String("faults", "all", "fault classes to inject: loss,reorder,dup,crash,fail | all | none")
		seeds   = fs.Int("seeds", 100, "number of seeds per configuration")
		seed0   = fs.Int64("seed0", 1, "first seed")
		steps   = fs.Int("steps", 200, "fault-schedule operations per walk")
		workers = fs.Int("workers", runtime.NumCPU(), "parallel walks (does not affect results)")
		shrink  = fs.Bool("shrink", true, "shrink the first violating walk per configuration")
		corpus  = fs.String("corpus", "", "directory to persist shrunk counterexamples into")
		maxExt  = fs.Int("maxext", 20000, "fair-extension step budget per walk")
		trace   = fs.String("trace", "", "write a JSONL trace of the sweep to this file")
		metrics = fs.String("metrics", "", "write the final metrics snapshot JSON to this file (\"-\": stderr)")
		every   = fs.Duration("snapshot-every", 0, "emit metrics-snapshot trace events at this interval (needs -trace)")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return 2, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	requested, err := swarm.ParseFaults(*faults)
	if err != nil {
		return 2, err
	}
	combos, err := swarm.DefaultCombos(strings.Split(*protocols, ","), requested)
	if err != nil {
		return 2, err
	}
	var reg *obs.Registry
	if *metrics != "" || *every > 0 {
		reg = obs.NewRegistry()
	}
	var tr *obs.Trace
	if *trace != "" {
		tr, err = obs.OpenTrace(*trace)
		if err != nil {
			return 2, err
		}
		defer tr.Close()
	}
	tick := obs.StartTicker(reg, tr, *every)
	defer tick.Stop()
	// SIGINT/SIGTERM stop the sweep gracefully: in-flight walks finish,
	// the partial summary is printed and the obs artifacts below are
	// flushed instead of lost with the buffered data.
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		if _, ok := <-sigc; ok {
			fmt.Fprintln(os.Stderr, "swarm: signal received — finishing in-flight walks")
			close(stop)
		}
	}()
	defer func() {
		signal.Stop(sigc)
		close(sigc)
	}()
	sum, err := swarm.Run(swarm.Config{
		Combos:       combos,
		Seeds:        swarm.SeedRange(*seed0, *seeds),
		Steps:        *steps,
		Workers:      *workers,
		Shrink:       *shrink,
		MaxExtension: *maxExt,
		Metrics:      reg,
		Trace:        tr,
		OnWalk:       walkProgress(os.Stderr),
		Stop:         stop,
	})
	if err != nil {
		return 2, err
	}
	tick.Stop() // quiesce the snapshot stream before the terminal metrics event
	if reg != nil {
		tr.Emit("metrics", obs.JSON("snapshot", reg.Snapshot()))
		if *metrics != "" {
			if err := writeMetrics(*metrics, reg.Snapshot()); err != nil {
				return 2, err
			}
		}
	}
	if tr != nil {
		if err := tr.Close(); err != nil {
			return 2, err
		}
	}
	if *corpus != "" {
		for _, rep := range sum.Combos {
			if rep.Counterexample == nil {
				continue
			}
			note := fmt.Sprintf("swarm -protocols %s -faults %s -steps %d (seed %d)",
				rep.Combo.Protocol, rep.Combo.Faults, *steps, rep.Counterexample.Seed)
			path, err := swarm.Save(*corpus, swarm.SwarmEntry(rep.Counterexample, note))
			if err != nil {
				return 2, err
			}
			fmt.Fprintf(os.Stderr, "swarm: persisted %s counterexample to %s\n", rep.Counterexample.Property, path)
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		return 2, err
	}
	if sum.Violations > 0 {
		return 1, nil
	}
	if sum.Interrupted {
		return exitInterrupted, nil
	}
	return 0, nil
}
