package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/swarm"
)

// TestSweepIsCleanAndDeterministic runs a small expect-correct sweep
// twice and asserts (1) zero violations, exit code 0, and (2)
// byte-identical JSON summaries — the command's determinism contract.
func TestSweepIsCleanAndDeterministic(t *testing.T) {
	args := []string{"-protocols", "abp,stenning", "-seeds", "6", "-steps", "120", "-workers", "4"}
	var first bytes.Buffer
	code, err := run(args, &first)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0; summary:\n%s", code, first.String())
	}
	var sum swarm.Summary
	if err := json.Unmarshal(first.Bytes(), &sum); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if sum.Violations != 0 {
		t.Fatalf("clean sweep reported %d violations", sum.Violations)
	}
	var second bytes.Buffer
	if _, err := run(args, &second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("same seeds, different summaries:\n%s\n---\n%s", first.String(), second.String())
	}
}

// TestBrokenProtocolPersistsCounterexample runs the known-bad target and
// asserts the command finds the DL4 violation, exits 1, and persists a
// replayable shrunk counterexample.
func TestBrokenProtocolPersistsCounterexample(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	code, err := run([]string{
		"-protocols", "abp-stuck", "-faults", "loss",
		"-seeds", "20", "-steps", "150", "-workers", "4",
		"-corpus", dir,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1; summary:\n%s", code, out.String())
	}
	var sum swarm.Summary
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Violations == 0 {
		t.Fatal("broken protocol produced no violations")
	}
	matches, err := filepath.Glob(filepath.Join(dir, "swarm-*.json"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no persisted counterexample in %s (err=%v)", dir, err)
	}
	corpus, err := swarm.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	for name, e := range corpus {
		if e.Counterexample == nil {
			t.Fatalf("entry %s has no counterexample", name)
		}
		if got := e.Counterexample.Actions(); got > 20 {
			t.Errorf("entry %s: %d schedule actions, want ≤ 20", name, got)
		}
		if err := swarm.ReplayEntry(e, 0); err != nil {
			t.Errorf("entry %s does not replay: %v", name, err)
		}
	}
}

// TestTraceAndMetricsFlags runs a sweep with -trace and -metrics and
// checks the artifacts: schema-valid JSONL with swarm.walk events and a
// final metrics event, plus a metrics snapshot whose walk counter
// matches the sweep size — and a summary unchanged by observability.
func TestTraceAndMetricsFlags(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	metricsPath := filepath.Join(dir, "metrics.json")
	base := []string{"-protocols", "abp", "-faults", "loss", "-seeds", "5", "-steps", "100", "-workers", "2"}
	var plain bytes.Buffer
	if _, err := run(base, &plain); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := run(append(base, "-trace", tracePath, "-metrics", metricsPath), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0; summary:\n%s", code, out.String())
	}
	if !bytes.Equal(plain.Bytes(), out.Bytes()) {
		t.Fatalf("observability changed the summary:\n%s\n---\n%s", plain.String(), out.String())
	}

	blob, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatalf("metrics file is not valid snapshot JSON: %v", err)
	}
	// abp requires FIFO channels, so the sweep is 1 combo × 5 seeds.
	if got := snap.Counter("swarm.walks"); got != 5 {
		t.Errorf("swarm.walks = %d, want 5", got)
	}

	tf, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	var v obs.Validator
	events := map[string]int{}
	lastEvent := ""
	sc := bufio.NewScanner(tf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		event, err := v.Line(sc.Bytes())
		if err != nil {
			t.Fatalf("trace line invalid: %v", err)
		}
		events[event]++
		lastEvent = event
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if events["swarm.walk"] != 5 || events["swarm.combo"] != 1 {
		t.Errorf("unexpected event mix: %v", events)
	}
	if lastEvent != "metrics" {
		t.Errorf("trace ends with %q, want the final metrics event", lastEvent)
	}
}

func TestUnknownFlagsAndValues(t *testing.T) {
	if _, err := run([]string{"-protocols", "nosuch"}, os.Stderr); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := run([]string{"-faults", "cosmic-rays"}, os.Stderr); err == nil {
		t.Fatal("unknown fault accepted")
	}
}

// TestSnapshotStreaming: -snapshot-every alone provisions a registry and
// streams metrics-snapshot events into the trace; the summary stays
// byte-identical and no metrics file is involved.
func TestSnapshotStreaming(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	args := []string{"-protocols", "abp", "-faults", "loss", "-seeds", "12",
		"-steps", "300", "-workers", "2", "-trace", tracePath, "-snapshot-every", "1ms"}
	var out bytes.Buffer
	code, err := run(args, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0; summary:\n%s", code, out.String())
	}
	tf, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	var v obs.Validator
	events := map[string]int{}
	sc := bufio.NewScanner(tf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		event, err := v.Line(sc.Bytes())
		if err != nil {
			t.Fatalf("trace line invalid: %v", err)
		}
		events[event]++
	}
	if events["metrics-snapshot"] == 0 {
		t.Errorf("no metrics-snapshot events streamed: %v", events)
	}
	if events["metrics"] != 1 {
		t.Errorf("terminal metrics event count = %d, want 1: %v", events["metrics"], events)
	}
}
