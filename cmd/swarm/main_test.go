package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/swarm"
)

// TestSweepIsCleanAndDeterministic runs a small expect-correct sweep
// twice and asserts (1) zero violations, exit code 0, and (2)
// byte-identical JSON summaries — the command's determinism contract.
func TestSweepIsCleanAndDeterministic(t *testing.T) {
	args := []string{"-protocols", "abp,stenning", "-seeds", "6", "-steps", "120", "-workers", "4"}
	var first bytes.Buffer
	code, err := run(args, &first)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0; summary:\n%s", code, first.String())
	}
	var sum swarm.Summary
	if err := json.Unmarshal(first.Bytes(), &sum); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if sum.Violations != 0 {
		t.Fatalf("clean sweep reported %d violations", sum.Violations)
	}
	var second bytes.Buffer
	if _, err := run(args, &second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("same seeds, different summaries:\n%s\n---\n%s", first.String(), second.String())
	}
}

// TestBrokenProtocolPersistsCounterexample runs the known-bad target and
// asserts the command finds the DL4 violation, exits 1, and persists a
// replayable shrunk counterexample.
func TestBrokenProtocolPersistsCounterexample(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	code, err := run([]string{
		"-protocols", "abp-stuck", "-faults", "loss",
		"-seeds", "20", "-steps", "150", "-workers", "4",
		"-corpus", dir,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1; summary:\n%s", code, out.String())
	}
	var sum swarm.Summary
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Violations == 0 {
		t.Fatal("broken protocol produced no violations")
	}
	matches, err := filepath.Glob(filepath.Join(dir, "swarm-*.json"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no persisted counterexample in %s (err=%v)", dir, err)
	}
	corpus, err := swarm.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	for name, e := range corpus {
		if e.Counterexample == nil {
			t.Fatalf("entry %s has no counterexample", name)
		}
		if got := e.Counterexample.Actions(); got > 20 {
			t.Errorf("entry %s: %d schedule actions, want ≤ 20", name, got)
		}
		if err := swarm.ReplayEntry(e, 0); err != nil {
			t.Errorf("entry %s does not replay: %v", name, err)
		}
	}
}

func TestUnknownFlagsAndValues(t *testing.T) {
	if _, err := run([]string{"-protocols", "nosuch"}, os.Stderr); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := run([]string{"-faults", "cosmic-rays"}, os.Stderr); err == nil {
		t.Fatal("unknown fault accepted")
	}
}
