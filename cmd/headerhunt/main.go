// Command headerhunt runs the Theorem 8.5 adversary (the header pump)
// against a data link protocol over the non-FIFO permissive channels C̄:
// if the protocol is message-independent, k-bounded and has bounded
// headers, the pump accumulates stale in-transit packets — one per
// underrepresented header class per round — and then replays the receiver
// against the stale set, forcing a duplicate or spurious delivery. A
// protocol with unbounded headers (Stenning's) is rejected by the
// hypothesis check — the two sides of the paper's Section 8.
//
// Examples:
//
//	headerhunt -protocol gbn -n 8 -w 1 -trace
//	headerhunt -protocol abp
//	headerhunt -protocol stenning   # rejected: unbounded headers
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/adversary"
	"repro/internal/ioa"
	"repro/internal/msc"
	"repro/internal/protocol"
)

func main() {
	var (
		proto = flag.String("protocol", "gbn", fmt.Sprintf("protocol: %v", protocol.Names()))
		n     = flag.Int("n", 8, "Go-Back-N modulus")
		w     = flag.Int("w", 1, "Go-Back-N window")
		trace = flag.Bool("trace", false, "print the violating data link behavior")
		chart = flag.Bool("msc", false, "print the full violating execution as a message sequence chart")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "headerhunt: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*proto, *n, *w, *trace, *chart); err != nil {
		fmt.Fprintln(os.Stderr, "headerhunt:", err)
		os.Exit(1)
	}
}

func run(proto string, n, w int, trace, chart bool) error {
	p, err := protocol.ByName(proto, n, w)
	if err != nil {
		return err
	}
	rep, err := adversary.HeaderPump(p, adversary.HeaderPumpConfig{})
	if errors.Is(err, adversary.ErrHypothesisRejected) {
		fmt.Printf("protocol %s escapes Theorem 8.5 — hypothesis check failed:\n  %v\n", p.Name, err)
		fmt.Println("(unbounded headers, like Stenning's absolute sequence numbers, are outside the theorem — and Theorem 8.5 shows they are unavoidable)")
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Print(rep)
	fmt.Println("stale packets accumulated (the set T):")
	for i, pk := range rep.Withheld {
		fmt.Printf("  %2d. %s\n", i+1, pk)
	}
	if trace {
		fmt.Println("violating data link behavior:")
		fmt.Print(ioa.FormatSchedule(rep.Behavior))
	}
	if chart {
		fmt.Println("message sequence chart of the violating execution:")
		fmt.Print(msc.Render(rep.Schedule, msc.Options{}))
	}
	if rep.Verdict.OK() {
		return fmt.Errorf("pump failed to produce a WDL violation — this refutes the reproduction, not the theorem")
	}
	return nil
}
