package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/ioa"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// E11 measures the model checker itself: throughput (states/sec) of the
// parallel level-synchronous BFS across worker counts, plus the dedup
// memory footprint of the hashed seen-set against exact full-key dedup.
// The workload is an exhaustive verification (Stenning over the
// reordering channel C̄), so every run covers the same state space and
// the per-worker-count StatesExplored figures double as a live soundness
// check — the JSON encodes a claim that parallelism changed nothing but
// the wall clock.

// e11Run is one worker-count measurement (hashed dedup).
type e11Run struct {
	Workers      int     `json:"workers"`
	States       int     `json:"states"`
	DurationMS   float64 `json:"duration_ms"`
	StatesPerSec float64 `json:"states_per_sec"`
	SpeedupVsW1  float64 `json:"speedup_vs_w1"`
}

// e11Result is one machine-readable benchmark entry; BENCH_explore.json
// is an append-style array of these, so before/after comparisons (e.g.
// instrumentation overhead checks) live in one labelled history.
type e11Result struct {
	Experiment          string   `json:"experiment"`
	Label               string   `json:"label,omitempty"`
	Protocol            string   `json:"protocol"`
	Channels            string   `json:"channels"`
	PoolInputs          int      `json:"pool_inputs"`
	MaxDepth            int      `json:"max_depth"`
	Cores               int      `json:"cores"`
	GOMAXPROCS          int      `json:"gomaxprocs"`
	States              int      `json:"states"`
	Exhausted           bool     `json:"exhausted"`
	Runs                []e11Run `json:"runs"`
	HashedSeenBytes     int64    `json:"hashed_seen_bytes"`
	ExactSeenBytes      int64    `json:"exact_seen_bytes"`
	HashedBytesPerState float64  `json:"hashed_bytes_per_state"`
	ExactBytesPerState  float64  `json:"exact_bytes_per_state"`
	DedupBytesRatio     float64  `json:"dedup_bytes_ratio"`
	// Metrics snapshot figures from one extra instrumented run (the timed
	// runs above always execute with metrics disabled, so they measure
	// the uninstrumented hot path).
	PeakFrontier int64   `json:"peak_frontier"`
	DedupHits    int64   `json:"dedup_hits"`
	DedupMisses  int64   `json:"dedup_misses"`
	DedupHitRate float64 `json:"dedup_hit_rate"`
	// Checkpoint overhead: one extra timed run (metrics disabled) that
	// writes a durable checkpoint at every level barrier, compared
	// against the same-worker uncheckpointed run above. Write count and
	// last-snapshot size come from the instrumented run.
	CheckpointWrites      int64   `json:"checkpoint_writes"`
	CheckpointLastBytes   int64   `json:"checkpoint_last_bytes"`
	CheckpointDurationMS  float64 `json:"checkpoint_duration_ms"`
	CheckpointOverheadPct float64 `json:"checkpoint_overhead_pct"`
	// Reduction A/B: the same workload under symmetry reduction, POR, and
	// both (timed, metrics disabled, workers as in Runs[0]). Symmetry
	// shrinks the state space (reduction_ratio = states /
	// reduced_states); POR prunes transitions, never states, so
	// por_states must equal states — the entry records the live proof.
	SymmetryStates       int     `json:"symmetry_states"`
	SymmetryStatesPerSec float64 `json:"symmetry_states_per_sec"`
	SymmetryRenames      int64   `json:"symmetry_renames"`
	PORStates            int     `json:"por_states"`
	PORStatesPerSec      float64 `json:"por_states_per_sec"`
	PORPruned            int64   `json:"por_pruned_transitions"`
	ReducedStates        int     `json:"reduced_states"`
	ReducedStatesPerSec  float64 `json:"reduced_states_per_sec"`
	ReductionRatio       float64 `json:"reduction_ratio"`
	// Memory-bound-mode A/B: the same workload with the disk-spill
	// seen-set (tiny threshold forcing real spills) and with the flat
	// frontier arena, both asserted to explore exactly the baseline state
	// count — the entry records the representation-equivalence proof the
	// spill-smoke target re-checks in CI. PeakRSSBytes is the process
	// high-water mark (ru_maxrss) after all runs.
	SpillStates       int     `json:"spill_states"`
	SpillStatesPerSec float64 `json:"spill_states_per_sec"`
	SpillSeenBytes    int64   `json:"spill_seen_bytes"`
	SpillThreshold    int     `json:"spill_threshold"`
	SpillSpills       int64   `json:"spill_spills"`
	SpillMerges       int64   `json:"spill_merges"`
	SpillRunFiles     int     `json:"spill_run_files"`
	SpilledSums       int64   `json:"spilled_sums"`
	SpillDiskBytes    int64   `json:"spill_disk_bytes"`
	SpillProbes       int64   `json:"spill_probes"`
	ArenaStates       int     `json:"arena_states"`
	ArenaStatesPerSec float64 `json:"arena_states_per_sec"`
	PeakRSSBytes      int64   `json:"peak_rss_bytes"`
}

func runE11(workersCSV, jsonPath, label string) error {
	workers, err := parseInts(workersCSV)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(protocol.NewStenning(), false)
	if err != nil {
		return err
	}
	inputs := []ioa.Action{
		ioa.Wake(ioa.TR), ioa.Wake(ioa.RT),
		ioa.SendMsg(ioa.TR, "m1"), ioa.SendMsg(ioa.TR, "m2"), ioa.SendMsg(ioa.TR, "m3"),
	}
	cfg := explore.Config{
		Inputs:       inputs,
		MaxDepth:     24,
		MaxInTransit: 3,
	}
	out := e11Result{
		Experiment: "e11",
		Label:      label,
		Protocol:   "stenning",
		Channels:   "C̄(reordering)",
		PoolInputs: len(inputs),
		MaxDepth:   cfg.MaxDepth,
		Cores:      runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	fmt.Printf("E11: parallel BFS throughput, stenning/C̄, pool=%d, depth≤%d, cores=%d\n",
		len(inputs), cfg.MaxDepth, out.Cores)

	// Timed runs keep Metrics nil: the benchmark measures the
	// uninstrumented hot path, the zero-cost-when-disabled contract's
	// figure of record. Snapshot figures come from one extra untimed run.
	measure := func(w int, exact bool, reg *obs.Registry, ck explore.CheckpointOptions, sym, por bool, mod func(*explore.Config)) (*explore.Result, time.Duration, error) {
		c := cfg
		c.Monitor = explore.NewSafetyMonitor(true)
		c.Workers = w
		c.ExactDedup = exact
		c.Metrics = reg
		c.Checkpoint = ck
		c.Symmetry = sym
		c.POR = por
		if mod != nil {
			mod(&c)
		}
		began := time.Now()
		res, err := explore.BFS(sys, c)
		return res, time.Since(began), err
	}

	var base float64
	for _, w := range workers {
		res, elapsed, err := measure(w, false, nil, explore.CheckpointOptions{}, false, false, nil)
		if err != nil {
			return err
		}
		if res.Violation != nil {
			return fmt.Errorf("e11: unexpected violation: %s", res.Violation)
		}
		if out.States == 0 {
			out.States = res.StatesExplored
			out.Exhausted = res.Exhausted
			out.HashedSeenBytes = res.SeenSetBytes
		} else if res.StatesExplored != out.States {
			return fmt.Errorf("e11: workers=%d explored %d states, want %d (parallel dedup unsound?)",
				w, res.StatesExplored, out.States)
		}
		rate := float64(res.StatesExplored) / elapsed.Seconds()
		if base == 0 {
			base = rate
		}
		run := e11Run{
			Workers:      w,
			States:       res.StatesExplored,
			DurationMS:   float64(elapsed.Microseconds()) / 1000,
			StatesPerSec: rate,
			SpeedupVsW1:  rate / base,
		}
		out.Runs = append(out.Runs, run)
		fmt.Printf("  workers=%-3d %9d states  %8.0f states/sec  speedup %.2fx\n",
			w, run.States, run.StatesPerSec, run.SpeedupVsW1)
	}

	exactRes, _, err := measure(1, true, nil, explore.CheckpointOptions{}, false, false, nil)
	if err != nil {
		return err
	}
	out.ExactSeenBytes = exactRes.SeenSetBytes
	if out.States > 0 {
		out.HashedBytesPerState = float64(out.HashedSeenBytes) / float64(out.States)
		out.ExactBytesPerState = float64(out.ExactSeenBytes) / float64(out.States)
	}
	if out.HashedSeenBytes > 0 {
		out.DedupBytesRatio = float64(out.ExactSeenBytes) / float64(out.HashedSeenBytes)
	}
	fmt.Printf("  seen-set: hashed %.1f B/state, exact %.1f B/state (%.1fx smaller)\n",
		out.HashedBytesPerState, out.ExactBytesPerState, out.DedupBytesRatio)

	// Checkpoint overhead: the same workload with a durable snapshot at
	// every level barrier (the worst-case -checkpoint-every cadence),
	// metrics still disabled so the delta against the workers[0] run
	// above isolates the write cost.
	ckDir, err := os.MkdirTemp("", "perfsweep-e11-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(ckDir)
	ck := explore.CheckpointOptions{Path: filepath.Join(ckDir, "e11.ckpt"), EveryLevels: 1}
	ckRes, ckElapsed, err := measure(workers[0], false, nil, ck, false, false, nil)
	if err != nil {
		return err
	}
	if ckRes.StatesExplored != out.States {
		return fmt.Errorf("e11: checkpointed run explored %d states, want %d (checkpointing perturbed the search?)",
			ckRes.StatesExplored, out.States)
	}
	out.CheckpointDurationMS = float64(ckElapsed.Microseconds()) / 1000
	if len(out.Runs) > 0 && out.Runs[0].DurationMS > 0 {
		out.CheckpointOverheadPct = (out.CheckpointDurationMS - out.Runs[0].DurationMS) / out.Runs[0].DurationMS * 100
	}

	// One extra instrumented run (never timed) harvests the metrics
	// snapshot figures: peak frontier width, dedup hit rate, and the
	// checkpoint write count and last-snapshot size.
	reg := obs.NewRegistry()
	if _, _, err := measure(workers[0], false, reg, ck, false, false, nil); err != nil {
		return err
	}
	snap := reg.Snapshot()
	out.PeakFrontier = snap.Gauge("explore.frontier_peak")
	out.DedupHits = snap.Counter("explore.dedup_hits")
	out.DedupMisses = snap.Counter("explore.dedup_misses")
	if total := out.DedupHits + out.DedupMisses; total > 0 {
		out.DedupHitRate = float64(out.DedupHits) / float64(total)
	}
	out.CheckpointWrites = snap.Counter("explore.checkpoints")
	out.CheckpointLastBytes = snap.Gauge("explore.checkpoint_bytes")
	fmt.Printf("  instrumented run: peak frontier %d, dedup hit rate %.3f (%d hits / %d misses)\n",
		out.PeakFrontier, out.DedupHitRate, out.DedupHits, out.DedupMisses)
	fmt.Printf("  checkpointing: %d writes (last %d B), run %.1f ms vs %.1f ms uncheckpointed (%+.1f%%)\n",
		out.CheckpointWrites, out.CheckpointLastBytes,
		out.CheckpointDurationMS, out.Runs[0].DurationMS, out.CheckpointOverheadPct)

	// Reduction A/B: the same workload with symmetry reduction only, POR
	// only, and both together (timed, metrics disabled, workers[0]).
	// Symmetry is the state-space reducer; POR prunes redundant
	// transitions but — by the consecutive-block-rewriting argument in
	// internal/explore/reduction.go — never changes which states are
	// reachable, so the POR-only state count equaling the baseline is
	// asserted here as a live soundness check, not just documented.
	symRes, symElapsed, err := measure(workers[0], false, nil, explore.CheckpointOptions{}, true, false, nil)
	if err != nil {
		return err
	}
	if symRes.Violation != nil {
		return fmt.Errorf("e11: symmetry run found a violation the baseline did not: %s", symRes.Violation)
	}
	porRes, porElapsed, err := measure(workers[0], false, nil, explore.CheckpointOptions{}, false, true, nil)
	if err != nil {
		return err
	}
	if porRes.Violation != nil {
		return fmt.Errorf("e11: POR run found a violation the baseline did not: %s", porRes.Violation)
	}
	if porRes.StatesExplored != out.States {
		return fmt.Errorf("e11: POR explored %d states, want %d (POR must prune transitions, never states)",
			porRes.StatesExplored, out.States)
	}
	bothRes, bothElapsed, err := measure(workers[0], false, nil, explore.CheckpointOptions{}, true, true, nil)
	if err != nil {
		return err
	}
	if bothRes.Violation != nil {
		return fmt.Errorf("e11: reduced run found a violation the baseline did not: %s", bothRes.Violation)
	}
	if bothRes.StatesExplored >= out.States {
		return fmt.Errorf("e11: reductions explored %d states, want strictly fewer than %d",
			bothRes.StatesExplored, out.States)
	}
	out.SymmetryStates = symRes.StatesExplored
	out.SymmetryStatesPerSec = float64(symRes.StatesExplored) / symElapsed.Seconds()
	out.PORStates = porRes.StatesExplored
	out.PORStatesPerSec = float64(porRes.StatesExplored) / porElapsed.Seconds()
	out.ReducedStates = bothRes.StatesExplored
	out.ReducedStatesPerSec = float64(bothRes.StatesExplored) / bothElapsed.Seconds()
	out.ReductionRatio = float64(out.States) / float64(out.ReducedStates)

	// One instrumented reduced run harvests the reduction counters.
	redReg := obs.NewRegistry()
	if _, _, err := measure(workers[0], false, redReg, explore.CheckpointOptions{}, true, true, nil); err != nil {
		return err
	}
	redSnap := redReg.Snapshot()
	out.SymmetryRenames = redSnap.Counter("explore.symmetry_renames")
	out.PORPruned = redSnap.Counter("explore.por_pruned")
	fmt.Printf("  symmetry:  %9d states  %8.0f states/sec  (%d canonical renames)\n",
		out.SymmetryStates, out.SymmetryStatesPerSec, out.SymmetryRenames)
	fmt.Printf("  por:       %9d states  %8.0f states/sec  (%d transitions pruned, states unchanged)\n",
		out.PORStates, out.PORStatesPerSec, out.PORPruned)
	fmt.Printf("  sym+por:   %9d states  %8.0f states/sec  reduction %.2fx\n",
		out.ReducedStates, out.ReducedStatesPerSec, out.ReductionRatio)

	// Memory-bound-mode A/B: disk-spill seen-set with a threshold far
	// below the state count (forcing several real spills and at least one
	// merge), and the flat frontier arena — each asserted bit-equivalent
	// on the state count, the live representation-equivalence check.
	spillDir, err := os.MkdirTemp("", "perfsweep-e11-spill-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(spillDir)
	out.SpillThreshold = max(out.States/16, 1024)
	spillRes, spillElapsed, err := measure(workers[0], false, nil, explore.CheckpointOptions{}, false, false,
		func(c *explore.Config) { c.SpillDir = spillDir; c.SpillThreshold = out.SpillThreshold })
	if err != nil {
		return err
	}
	if spillRes.StatesExplored != out.States || spillRes.Violation != nil {
		return fmt.Errorf("e11: spill run explored %d states (violation=%v), want %d and none (spill representation unsound?)",
			spillRes.StatesExplored, spillRes.Violation, out.States)
	}
	out.SpillStates = spillRes.StatesExplored
	out.SpillStatesPerSec = float64(spillRes.StatesExplored) / spillElapsed.Seconds()
	out.SpillSeenBytes = spillRes.SeenSetBytes
	if sp := spillRes.Spill; sp != nil {
		out.SpillSpills, out.SpillMerges, out.SpillProbes = sp.Spills, sp.Merges, sp.Probes
		out.SpillRunFiles, out.SpilledSums, out.SpillDiskBytes = sp.Runs, sp.SpilledSums, sp.DiskBytes
	}
	arenaRes, arenaElapsed, err := measure(workers[0], false, nil, explore.CheckpointOptions{}, false, false,
		func(c *explore.Config) { c.Arena = true })
	if err != nil {
		return err
	}
	if arenaRes.StatesExplored != out.States || arenaRes.Violation != nil {
		return fmt.Errorf("e11: arena run explored %d states (violation=%v), want %d and none (arena representation unsound?)",
			arenaRes.StatesExplored, arenaRes.Violation, out.States)
	}
	out.ArenaStates = arenaRes.StatesExplored
	out.ArenaStatesPerSec = float64(arenaRes.StatesExplored) / arenaElapsed.Seconds()
	out.PeakRSSBytes = peakRSSBytes()
	fmt.Printf("  spill:     %9d states  %8.0f states/sec  front ≈%d B (threshold %d), %d spills/%d merges, %d sums in %d runs (%d B disk), %d probes\n",
		out.SpillStates, out.SpillStatesPerSec, out.SpillSeenBytes, out.SpillThreshold,
		out.SpillSpills, out.SpillMerges, out.SpilledSums, out.SpillRunFiles, out.SpillDiskBytes, out.SpillProbes)
	fmt.Printf("  arena:     %9d states  %8.0f states/sec  (flat-slab frontier)\n",
		out.ArenaStates, out.ArenaStatesPerSec)
	fmt.Printf("  peak RSS:  %d bytes (process high-water mark across all runs)\n", out.PeakRSSBytes)

	if jsonPath != "" {
		if err := appendBenchEntry(jsonPath, out); err != nil {
			return err
		}
		fmt.Printf("appended entry to %s\n", jsonPath)
	}
	return nil
}

// peakRSSBytes reports the process's resident-set high-water mark
// (ru_maxrss, kilobytes on Linux), 0 if unavailable.
func peakRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Maxrss * 1024
}

// appendBenchEntry appends one entry to the benchmark file, which is a
// JSON array of labelled e11Result entries. A legacy single-object file
// (the pre-array format) is wrapped into a one-entry array first, so
// history is never lost.
func appendBenchEntry(path string, entry e11Result) error {
	var entries []json.RawMessage
	blob, err := os.ReadFile(path)
	switch {
	case err == nil && len(bytes.TrimSpace(blob)) > 0:
		trimmed := bytes.TrimSpace(blob)
		if trimmed[0] == '[' {
			if err := json.Unmarshal(trimmed, &entries); err != nil {
				return fmt.Errorf("e11: %s is not a valid benchmark array: %w", path, err)
			}
		} else {
			var legacy e11Result
			if err := json.Unmarshal(trimmed, &legacy); err != nil {
				return fmt.Errorf("e11: %s is not a valid benchmark entry: %w", path, err)
			}
			entries = append(entries, json.RawMessage(trimmed))
		}
	case err != nil && !os.IsNotExist(err):
		return err
	}
	raw, err := json.Marshal(entry)
	if err != nil {
		return err
	}
	entries = append(entries, raw)
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
