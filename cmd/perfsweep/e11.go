package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/ioa"
	"repro/internal/protocol"
)

// E11 measures the model checker itself: throughput (states/sec) of the
// parallel level-synchronous BFS across worker counts, plus the dedup
// memory footprint of the hashed seen-set against exact full-key dedup.
// The workload is an exhaustive verification (Stenning over the
// reordering channel C̄), so every run covers the same state space and
// the per-worker-count StatesExplored figures double as a live soundness
// check — the JSON encodes a claim that parallelism changed nothing but
// the wall clock.

// e11Run is one worker-count measurement (hashed dedup).
type e11Run struct {
	Workers      int     `json:"workers"`
	States       int     `json:"states"`
	DurationMS   float64 `json:"duration_ms"`
	StatesPerSec float64 `json:"states_per_sec"`
	SpeedupVsW1  float64 `json:"speedup_vs_w1"`
}

// e11Result is the machine-readable benchmark record (BENCH_explore.json).
type e11Result struct {
	Experiment          string   `json:"experiment"`
	Protocol            string   `json:"protocol"`
	Channels            string   `json:"channels"`
	PoolInputs          int      `json:"pool_inputs"`
	MaxDepth            int      `json:"max_depth"`
	Cores               int      `json:"cores"`
	GOMAXPROCS          int      `json:"gomaxprocs"`
	States              int      `json:"states"`
	Exhausted           bool     `json:"exhausted"`
	Runs                []e11Run `json:"runs"`
	HashedSeenBytes     int64    `json:"hashed_seen_bytes"`
	ExactSeenBytes      int64    `json:"exact_seen_bytes"`
	HashedBytesPerState float64  `json:"hashed_bytes_per_state"`
	ExactBytesPerState  float64  `json:"exact_bytes_per_state"`
	DedupBytesRatio     float64  `json:"dedup_bytes_ratio"`
}

func runE11(workersCSV, jsonPath string) error {
	workers, err := parseInts(workersCSV)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(protocol.NewStenning(), false)
	if err != nil {
		return err
	}
	inputs := []ioa.Action{
		ioa.Wake(ioa.TR), ioa.Wake(ioa.RT),
		ioa.SendMsg(ioa.TR, "m1"), ioa.SendMsg(ioa.TR, "m2"), ioa.SendMsg(ioa.TR, "m3"),
	}
	cfg := explore.Config{
		Inputs:       inputs,
		MaxDepth:     24,
		MaxInTransit: 3,
	}
	out := e11Result{
		Experiment: "e11",
		Protocol:   "stenning",
		Channels:   "C̄(reordering)",
		PoolInputs: len(inputs),
		MaxDepth:   cfg.MaxDepth,
		Cores:      runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	fmt.Printf("E11: parallel BFS throughput, stenning/C̄, pool=%d, depth≤%d, cores=%d\n",
		len(inputs), cfg.MaxDepth, out.Cores)

	measure := func(w int, exact bool) (*explore.Result, time.Duration, error) {
		c := cfg
		c.Monitor = explore.NewSafetyMonitor(true)
		c.Workers = w
		c.ExactDedup = exact
		began := time.Now()
		res, err := explore.BFS(sys, c)
		return res, time.Since(began), err
	}

	var base float64
	for _, w := range workers {
		res, elapsed, err := measure(w, false)
		if err != nil {
			return err
		}
		if res.Violation != nil {
			return fmt.Errorf("e11: unexpected violation: %s", res.Violation)
		}
		if out.States == 0 {
			out.States = res.StatesExplored
			out.Exhausted = res.Exhausted
			out.HashedSeenBytes = res.SeenSetBytes
		} else if res.StatesExplored != out.States {
			return fmt.Errorf("e11: workers=%d explored %d states, want %d (parallel dedup unsound?)",
				w, res.StatesExplored, out.States)
		}
		rate := float64(res.StatesExplored) / elapsed.Seconds()
		if base == 0 {
			base = rate
		}
		run := e11Run{
			Workers:      w,
			States:       res.StatesExplored,
			DurationMS:   float64(elapsed.Microseconds()) / 1000,
			StatesPerSec: rate,
			SpeedupVsW1:  rate / base,
		}
		out.Runs = append(out.Runs, run)
		fmt.Printf("  workers=%-3d %9d states  %8.0f states/sec  speedup %.2fx\n",
			w, run.States, run.StatesPerSec, run.SpeedupVsW1)
	}

	exactRes, _, err := measure(1, true)
	if err != nil {
		return err
	}
	out.ExactSeenBytes = exactRes.SeenSetBytes
	if out.States > 0 {
		out.HashedBytesPerState = float64(out.HashedSeenBytes) / float64(out.States)
		out.ExactBytesPerState = float64(out.ExactSeenBytes) / float64(out.States)
	}
	if out.HashedSeenBytes > 0 {
		out.DedupBytesRatio = float64(out.ExactSeenBytes) / float64(out.HashedSeenBytes)
	}
	fmt.Printf("  seen-set: hashed %.1f B/state, exact %.1f B/state (%.1fx smaller)\n",
		out.HashedBytesPerState, out.ExactBytesPerState, out.DedupBytesRatio)

	if jsonPath != "" {
		blob, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}
