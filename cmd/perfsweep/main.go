// Command perfsweep regenerates the quantitative context experiments:
//
//	perfsweep -exp e6    goodput versus window size under loss and delay
//	                     (the ARQ motivation for sliding windows, §1)
//	perfsweep -exp e4    Stenning header growth over reordering channels
//	                     (the linear growth Theorem 8.5 makes unavoidable)
//	perfsweep -exp e11   model-checker throughput and dedup memory across
//	                     worker counts; -json writes BENCH_explore.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/perf"
)

func main() {
	var (
		exp     = flag.String("exp", "e6", "experiment: e4 (header growth), e6 (goodput sweep), e6b (GBN vs SR under loss) or e11 (model-checker throughput)")
		delay   = flag.Int("delay", 8, "e6: one-way link delay in ticks")
		ticks   = flag.Int("ticks", 50000, "e6: simulated ticks per cell")
		windows = flag.String("windows", "1,2,4,8,16,32", "e6: comma-separated window sizes")
		losses  = flag.String("losses", "0,0.01,0.05,0.1,0.2", "e6: comma-separated loss rates")
		sizes   = flag.String("sizes", "10,30,100,300,1000", "e4: comma-separated message counts")
		seed    = flag.Int64("seed", 1, "random seed")
		sweepW  = flag.String("sweepworkers", "1,2,4,8", "e11: comma-separated BFS worker counts")
		jsonOut = flag.String("json", "", "e11: also append a machine-readable entry to this file")
		label   = flag.String("label", "", "e11: label recorded on the benchmark entry")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "perfsweep: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	var err error
	switch *exp {
	case "e6":
		err = runE6(*windows, *losses, *delay, *ticks, *seed)
	case "e6b":
		err = runE6b(*windows, *losses, *delay, *ticks, *seed)
	case "e4":
		err = runE4(*sizes, *seed)
	case "e11":
		err = runE11(*sweepW, *jsonOut, *label)
	default:
		err = fmt.Errorf("unknown experiment %q", *exp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfsweep:", err)
		os.Exit(1)
	}
}

func runE6(windowsCSV, lossesCSV string, delay, ticks int, seed int64) error {
	windows, err := parseInts(windowsCSV)
	if err != nil {
		return err
	}
	losses, err := parseFloats(lossesCSV)
	if err != nil {
		return err
	}
	rows, err := perf.SweepGoodput(windows, losses, delay, ticks, seed)
	if err != nil {
		return err
	}
	fmt.Printf("E6: Go-Back-N goodput (messages/tick), delay=%d (RTT=%d), %d ticks per cell\n", delay, 2*delay, ticks)
	fmt.Printf("%-8s", "loss\\W")
	for _, w := range windows {
		fmt.Printf("%8d", w)
	}
	fmt.Println()
	i := 0
	for _, p := range losses {
		fmt.Printf("%-8.2f", p)
		for range windows {
			fmt.Printf("%8.4f", rows[i].Goodput)
			i++
		}
		fmt.Println()
	}
	fmt.Println("\nexpected shape: goodput rises with W until the pipe (≈RTT packets) saturates;")
	fmt.Println("loss lowers the curve and the saturation point — the classic ARQ motivation for windows.")
	return nil
}

func runE6b(windowsCSV, lossesCSV string, delay, ticks int, seed int64) error {
	windows, err := parseInts(windowsCSV)
	if err != nil {
		return err
	}
	losses, err := parseFloats(lossesCSV)
	if err != nil {
		return err
	}
	fmt.Printf("E6b: Go-Back-N vs Selective Repeat goodput, delay=%d (RTT=%d), %d ticks per cell\n",
		delay, 2*delay, ticks)
	fmt.Printf("%-8s", "loss\\W")
	for _, w := range windows {
		fmt.Printf("%8d-gbn%8d-sr", w, w)
	}
	fmt.Println()
	for _, p := range losses {
		fmt.Printf("%-8.2f", p)
		for _, w := range windows {
			for _, d := range []perf.Discipline{perf.GoBackN, perf.SelectiveRepeat} {
				r, err := perf.SimulateGoodput(perf.GoodputConfig{
					Discipline: d, Window: w, Delay: delay, Loss: p, Ticks: ticks, Seed: seed,
				})
				if err != nil {
					return err
				}
				fmt.Printf("%12.4f", r.Goodput)
			}
		}
		fmt.Println()
	}
	fmt.Println("\nexpected shape: identical without loss; under loss Selective Repeat's per-packet")
	fmt.Println("recovery beats Go-Back-N's whole-window resend, and the gap widens with the window.")
	return nil
}

func runE4(sizesCSV string, seed int64) error {
	sizes, err := parseInts(sizesCSV)
	if err != nil {
		return err
	}
	fmt.Println("E4: Stenning's protocol over the reordering channel C̄ — header growth")
	for _, n := range sizes {
		res, err := perf.MeasureStenningHeaderGrowth(n, seed)
		if err != nil {
			return err
		}
		fmt.Printf("  %s\n", res)
	}
	fmt.Println("\nexpected shape: distinct data headers = n (linear), header bits ≈ log2(n);")
	fmt.Println("Theorem 8.5 shows no bounded-header protocol can avoid this over non-FIFO channels.")
	return nil
}

func parseInts(csv string) ([]int, error) {
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(csv string) ([]float64, error) {
	parts := strings.Split(csv, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
