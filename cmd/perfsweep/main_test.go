package main

import (
	"encoding/json"
	"os"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,3")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("expected error for non-integer")
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("0, 0.5")
	if err != nil || len(got) != 2 || got[1] != 0.5 {
		t.Errorf("parseFloats = %v, %v", got, err)
	}
	if _, err := parseFloats("a"); err == nil {
		t.Error("expected error for non-float")
	}
}

func TestRunExperiments(t *testing.T) {
	if err := runE6("1,4", "0,0.1", 4, 2000, 1); err != nil {
		t.Errorf("runE6: %v", err)
	}
	if err := runE6b("1,4", "0,0.1", 4, 2000, 1); err != nil {
		t.Errorf("runE6b: %v", err)
	}
	if err := runE4("5,10", 1); err != nil {
		t.Errorf("runE4: %v", err)
	}
	if err := runE6("bad", "0", 4, 100, 1); err == nil {
		t.Error("expected parse error")
	}
	if err := runE4("bad", 1); err == nil {
		t.Error("expected parse error")
	}
	if err := runE11("bad", ""); err == nil {
		t.Error("expected parse error")
	}
}

func TestRunE11WritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("e11 explores the full stenning space")
	}
	path := t.TempDir() + "/BENCH_explore.json"
	if err := runE11("1,2", path); err != nil {
		t.Fatalf("runE11: %v", err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out e11Result
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(out.Runs) != 2 || out.States == 0 || !out.Exhausted {
		t.Errorf("unexpected result: %+v", out)
	}
	if out.DedupBytesRatio < 3 {
		t.Errorf("dedup bytes ratio %.1f, want ≥ 3", out.DedupBytesRatio)
	}
}
