package main

import (
	"encoding/json"
	"os"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,3")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("expected error for non-integer")
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("0, 0.5")
	if err != nil || len(got) != 2 || got[1] != 0.5 {
		t.Errorf("parseFloats = %v, %v", got, err)
	}
	if _, err := parseFloats("a"); err == nil {
		t.Error("expected error for non-float")
	}
}

func TestRunExperiments(t *testing.T) {
	if err := runE6("1,4", "0,0.1", 4, 2000, 1); err != nil {
		t.Errorf("runE6: %v", err)
	}
	if err := runE6b("1,4", "0,0.1", 4, 2000, 1); err != nil {
		t.Errorf("runE6b: %v", err)
	}
	if err := runE4("5,10", 1); err != nil {
		t.Errorf("runE4: %v", err)
	}
	if err := runE6("bad", "0", 4, 100, 1); err == nil {
		t.Error("expected parse error")
	}
	if err := runE4("bad", 1); err == nil {
		t.Error("expected parse error")
	}
	if err := runE11("bad", "", ""); err == nil {
		t.Error("expected parse error")
	}
}

func TestRunE11WritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("e11 explores the full stenning space")
	}
	path := t.TempDir() + "/BENCH_explore.json"
	if err := runE11("1,2", path, "test"); err != nil {
		t.Fatalf("runE11: %v", err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var entries []e11Result
	if err := json.Unmarshal(blob, &entries); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(entries) != 1 {
		t.Fatalf("got %d entries, want 1", len(entries))
	}
	out := entries[0]
	if out.Label != "test" {
		t.Errorf("label %q, want %q", out.Label, "test")
	}
	if len(out.Runs) != 2 || out.States == 0 || !out.Exhausted {
		t.Errorf("unexpected result: %+v", out)
	}
	if out.DedupBytesRatio < 3 {
		t.Errorf("dedup bytes ratio %.1f, want ≥ 3", out.DedupBytesRatio)
	}
	if out.PeakFrontier <= 0 {
		t.Errorf("peak frontier %d, want > 0", out.PeakFrontier)
	}
	if out.DedupHitRate <= 0 || out.DedupHitRate >= 1 {
		t.Errorf("dedup hit rate %.3f, want in (0,1)", out.DedupHitRate)
	}
}

// TestAppendBenchEntry covers the append-style history file: a fresh
// file gets a one-entry array, a legacy single-object file is wrapped,
// and appending to an array preserves earlier entries.
func TestAppendBenchEntry(t *testing.T) {
	dir := t.TempDir()

	fresh := dir + "/fresh.json"
	if err := appendBenchEntry(fresh, e11Result{Experiment: "e11", Label: "a"}); err != nil {
		t.Fatal(err)
	}
	var entries []e11Result
	blob, _ := os.ReadFile(fresh)
	if err := json.Unmarshal(blob, &entries); err != nil || len(entries) != 1 || entries[0].Label != "a" {
		t.Fatalf("fresh file: entries=%+v err=%v", entries, err)
	}

	legacy := dir + "/legacy.json"
	if err := os.WriteFile(legacy, []byte(`{"experiment":"e11","states":42}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendBenchEntry(legacy, e11Result{Experiment: "e11", Label: "b"}); err != nil {
		t.Fatal(err)
	}
	blob, _ = os.ReadFile(legacy)
	entries = nil
	if err := json.Unmarshal(blob, &entries); err != nil || len(entries) != 2 {
		t.Fatalf("legacy wrap: entries=%+v err=%v", entries, err)
	}
	if entries[0].States != 42 || entries[1].Label != "b" {
		t.Errorf("legacy wrap lost history: %+v", entries)
	}

	if err := appendBenchEntry(legacy, e11Result{Experiment: "e11", Label: "c"}); err != nil {
		t.Fatal(err)
	}
	blob, _ = os.ReadFile(legacy)
	entries = nil
	if err := json.Unmarshal(blob, &entries); err != nil || len(entries) != 3 || entries[2].Label != "c" {
		t.Fatalf("array append: entries=%+v err=%v", entries, err)
	}

	garbage := dir + "/garbage.json"
	if err := os.WriteFile(garbage, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendBenchEntry(garbage, e11Result{}); err == nil {
		t.Error("appendBenchEntry accepted a corrupt file")
	}
}
