package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/ioa"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/swarm"
)

// exploreTrace produces a real explorer trace (the Thm 7.5 crash search,
// which violates) with the final metrics event appended, as cmd/explore
// would write it.
func exploreTrace(t *testing.T) *bytes.Buffer {
	t.Helper()
	sys, err := core.NewSystem(protocol.NewABP(), true)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	tr := obs.NewTrace(&buf)
	_, err = explore.BFS(sys, explore.Config{
		Inputs: []ioa.Action{
			ioa.Wake(ioa.TR), ioa.Wake(ioa.RT),
			ioa.SendMsg(ioa.TR, "m1"),
			ioa.Crash(ioa.RT), ioa.Wake(ioa.RT),
		},
		Monitor:      explore.NewSafetyMonitor(false),
		MaxDepth:     20,
		MaxInTransit: 2,
		Workers:      2,
		Metrics:      reg,
		Trace:        tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit("metrics", obs.JSON("snapshot", reg.Snapshot()))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// TestReportExploreTrace round-trips an explorer trace: validation
// passes and the summary carries the per-depth table, the metrics
// snapshot, the violation, and (with -msc) its annotated chart.
func TestReportExploreTrace(t *testing.T) {
	var out bytes.Buffer
	if err := report(exploreTrace(t), "t.jsonl", true, 10, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{
		"schema valid",
		"per-depth:",
		"explore.level",
		"top counters",
		"explore.states_expanded",
		"explore.fanout",
		"violation (explore.violation)",
		"[step 1]", // msc annotation of the first schedule row
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("report missing %q:\n%s", frag, s)
		}
	}
}

// TestReportSwarmTrace round-trips a swarm trace with a violating combo.
func TestReportSwarmTrace(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	tr := obs.NewTrace(&buf)
	_, err := swarm.Run(swarm.Config{
		Combos:  []swarm.Combo{{Protocol: "abp-stuck", FIFO: true, Faults: swarm.Faults{Loss: true}}},
		Seeds:   swarm.SeedRange(1, 8),
		Steps:   200,
		Workers: 2,
		Metrics: reg,
		Trace:   tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit("metrics", obs.JSON("snapshot", reg.Snapshot()))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := report(&buf, "s.jsonl", true, 0, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{
		"swarm.walk",
		"swarm.walks",
		"violation (swarm.violation",
		"seed",
		"swarm.walk_steps",
		"[step ", // absolute step annotations on the chart rows
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("report missing %q:\n%s", frag, s)
		}
	}
}

// TestReportRejectsMalformed feeds broken streams and expects errors.
func TestReportRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"not json":    "nonsense\n",
		"bad prefix":  `{"event":"x","seq":1,"t_us":0}` + "\n",
		"seq gap":     `{"seq":1,"t_us":0,"event":"a"}` + "\n" + `{"seq":3,"t_us":0,"event":"b"}` + "\n",
		"time travel": `{"seq":1,"t_us":9,"event":"a"}` + "\n" + `{"seq":2,"t_us":3,"event":"b"}` + "\n",
	}
	for name, in := range cases {
		var out bytes.Buffer
		if err := report(strings.NewReader(in), name, false, 10, &out); err == nil {
			t.Errorf("%s: report accepted a malformed trace", name)
		}
	}
}

// TestReportGolden pins the report for a synthetic fixed-clock trace.
func TestReportGolden(t *testing.T) {
	var buf bytes.Buffer
	var ticks time.Duration
	tr := obs.NewTraceWithClock(&buf, func() time.Duration {
		ticks += time.Millisecond
		return ticks
	})
	tr.Emit("explore.level",
		obs.Int("depth", 0), obs.Int("frontier", 1), obs.Int("admitted", 4),
		obs.Int("states", 5), obs.F64("states_per_sec", 5000))
	tr.Emit("explore.done", obs.Int("states", 5))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := report(&buf, "g.jsonl", false, 10, &out); err != nil {
		t.Fatal(err)
	}
	want := "g.jsonl: 2 events, schema valid\n" +
		"\nevents:\n" +
		"  explore.done              1\n" +
		"  explore.level             1\n" +
		"\nper-depth:\n" +
		"  depth  frontier  admitted    states  states/sec\n" +
		"      0         1         4         5        5000\n"
	if out.String() != want {
		t.Errorf("report mismatch:\ngot:\n%s\nwant:\n%s", out.String(), want)
	}
}

// TestReportSnapshotStream: periodic metrics-snapshot events (the
// -snapshot-every ticker) become a per-interval table with throughput
// deltas and the delivery-latency quantiles at each point.
func TestReportSnapshotStream(t *testing.T) {
	var buf bytes.Buffer
	var ticks time.Duration
	tr := obs.NewTraceWithClock(&buf, func() time.Duration {
		ticks += 100 * time.Millisecond
		return ticks
	})
	reg := obs.NewRegistry()
	delivered := reg.Counter("transport.msgs_delivered")
	lat := reg.Histogram("transport.delivery_latency", obs.ExpBuckets(1, 2, 24))
	for i := 0; i < 3; i++ {
		delivered.Add(100)
		lat.Observe(int64(10 * (i + 1)))
		tr.Emit("metrics-snapshot",
			obs.Int("interval_ms", 100),
			obs.JSON("snapshot", reg.Snapshot()))
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := report(&buf, "s.jsonl", false, 10, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{
		"snapshot stream (3 snapshots, transport.msgs_delivered):",
		"t_ms", "delta", "per_sec", "p95µs",
		" 100 ",  // the 100-per-interval delta
		" 1000 ", // 100 msgs per 100ms snapshot gap = 1000/s
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("report missing %q:\n%s", frag, s)
		}
	}
}

// TestReportSnapshotStreamExploreCounter: explorer traces fall back to
// explore.states as the throughput counter.
func TestReportSnapshotStreamExploreCounter(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTrace(&buf)
	reg := obs.NewRegistry()
	states := reg.Counter("explore.states_expanded")
	for i := 0; i < 2; i++ {
		states.Add(50)
		tr.Emit("metrics-snapshot",
			obs.Int("interval_ms", 100),
			obs.JSON("snapshot", reg.Snapshot()))
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := report(&buf, "e.jsonl", false, 10, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "snapshot stream (2 snapshots, explore.states_expanded):") {
		t.Errorf("explore counter fallback missing:\n%s", out.String())
	}
}

// TestReportCheckpointSection: a trace from a checkpointing search gains
// a "checkpoints:" summary (count, total bytes/latency, last snapshot's
// shape).
func TestReportCheckpointSection(t *testing.T) {
	sys, err := core.NewSystem(protocol.NewABP(), true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := obs.NewTrace(&buf)
	_, err = explore.BFS(sys, explore.Config{
		Inputs: []ioa.Action{
			ioa.Wake(ioa.TR), ioa.Wake(ioa.RT),
			ioa.SendMsg(ioa.TR, "m1"),
			ioa.Crash(ioa.RT), ioa.Wake(ioa.RT),
		},
		Monitor:      explore.NewSafetyMonitor(false),
		MaxDepth:     20,
		MaxInTransit: 2,
		Trace:        tr,
		Checkpoint:   explore.CheckpointOptions{Path: t.TempDir() + "/ck.jsonl", EveryLevels: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := report(&buf, "t.jsonl", false, 10, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"explore.checkpoint", "checkpoints:", "last at level"} {
		if !strings.Contains(s, frag) {
			t.Errorf("report missing %q:\n%s", frag, s)
		}
	}
}
