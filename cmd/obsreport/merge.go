package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/ioa"
	"repro/internal/msc"
	"repro/internal/obs"
)

// Cross-endpoint trace merge. The TCP transport's two endpoints each
// stream their causal linearization of one session's global schedule
// (internal/transport trace.go): every transport.event line carries its
// origin station and that origin's event index k, and the emit-before-
// send ordering over an order-preserving link guarantees both sides
// assign the same (origin, k) → action mapping. Merging is therefore a
// join on (origin, k): the client trace — which contains every event of
// the session, since the server's Bye reply trails all mirrored events
// — supplies the merged order, and the server trace supplies the other
// side's local timestamps plus an independent consistency check.
// DESIGN.md §10 gives the soundness argument.

// mergeEvent is one transport.event line of a session.
type mergeEvent struct {
	Origin string
	K      int64
	TUS    int64
	Raw    json.RawMessage
}

// mergeViolation is one transport.violation line, positioned by how
// many transport.event lines of its session preceded it.
type mergeViolation struct {
	Property string
	Detail   string
	Pos      int
}

// mergeSession is one session's slice of a trace.
type mergeSession struct {
	ID         int64
	Side       string
	Station    string
	Proto      string
	N, W       int
	FIFO       bool
	Events     []mergeEvent
	Violations []mergeViolation
	Verdict    string
	Clean      *bool
	Delivered  int64
}

// byOrigin splits a session's events per origin, in k order (the
// per-origin k indices are checked consecutive during parsing).
func (s *mergeSession) byOrigin() map[string][]mergeEvent {
	out := map[string][]mergeEvent{}
	for _, ev := range s.Events {
		out[ev.Origin] = append(out[ev.Origin], ev)
	}
	return out
}

// transportLine is the union of the transport.* trace event fields.
type transportLine struct {
	TUS       int64           `json:"t_us"`
	Event     string          `json:"event"`
	Session   int64           `json:"session"`
	Side      string          `json:"side"`
	Station   string          `json:"station"`
	Proto     string          `json:"proto"`
	N         int             `json:"n"`
	W         int             `json:"w"`
	FIFO      bool            `json:"fifo"`
	Origin    string          `json:"origin"`
	K         int64           `json:"k"`
	Action    json.RawMessage `json:"action"`
	Property  string          `json:"property"`
	Detail    string          `json:"detail"`
	Verdict   string          `json:"verdict"`
	Clean     *bool           `json:"clean"`
	Delivered int64           `json:"delivered"`
}

// parseSessions validates a trace stream and collects its transport
// sessions in first-seen order. Non-transport events (metrics,
// metrics-snapshot) are validated and skipped.
func parseSessions(r io.Reader, name string) ([]*mergeSession, error) {
	var v obs.Validator
	byID := map[int64]*mergeSession{}
	var order []*mergeSession
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		event, err := v.Line(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		var tl transportLine
		switch event {
		case "transport.session", "transport.event", "transport.violation", "transport.seal":
			if err := json.Unmarshal(sc.Bytes(), &tl); err != nil {
				return nil, fmt.Errorf("%s: line %d: %w", name, v.Lines(), err)
			}
		default:
			continue
		}
		s := byID[tl.Session]
		if s == nil {
			s = &mergeSession{ID: tl.Session}
			byID[tl.Session] = s
			order = append(order, s)
		}
		switch event {
		case "transport.session":
			s.Side, s.Station, s.Proto, s.N, s.W, s.FIFO = tl.Side, tl.Station, tl.Proto, tl.N, tl.W, tl.FIFO
		case "transport.event":
			s.Events = append(s.Events, mergeEvent{Origin: tl.Origin, K: tl.K, TUS: tl.TUS, Raw: tl.Action})
		case "transport.violation":
			s.Violations = append(s.Violations, mergeViolation{Property: tl.Property, Detail: tl.Detail, Pos: len(s.Events)})
		case "transport.seal":
			s.Verdict, s.Clean, s.Delivered = tl.Verdict, tl.Clean, tl.Delivered
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	// Per-origin k indices must be consecutive from zero — the merge
	// key's integrity check.
	for _, s := range order {
		next := map[string]int64{}
		for _, ev := range s.Events {
			if ev.K != next[ev.Origin] {
				return nil, fmt.Errorf("%s: session %d: origin %s event k=%d, want %d",
					name, s.ID, ev.Origin, ev.K, next[ev.Origin])
			}
			next[ev.Origin]++
		}
	}
	return order, nil
}

// matchSession finds the server-trace session describing the same
// session as the client's: identical parameters, identical origin-r
// event sequence, and the server's origin-t sequence a prefix of the
// client's (the client keeps tracing local actions after its Bye; the
// server has sealed by then). Used server sessions are marked so a
// multi-session server trace matches each client session at most once.
func matchSession(c *mergeSession, servers []*mergeSession, used map[*mergeSession]bool) (*mergeSession, error) {
	co := c.byOrigin()
	for _, s := range servers {
		if used[s] || s.Proto != c.Proto || s.N != c.N || s.W != c.W || s.FIFO != c.FIFO {
			continue
		}
		so := s.byOrigin()
		if !sameActions(so["r"], co["r"]) {
			continue
		}
		if len(so["t"]) > len(co["t"]) || !sameActions(so["t"], co["t"][:len(so["t"])]) {
			continue
		}
		used[s] = true
		return s, nil
	}
	return nil, fmt.Errorf("no server session matches client session %d (%s n=%d w=%d fifo=%v, %d events)",
		c.ID, c.Proto, c.N, c.W, c.FIFO, len(c.Events))
}

// sameActions compares two equal-length event runs by their encoded
// actions (the codec is deterministic, so byte equality is action
// equality).
func sameActions(a, b []mergeEvent) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if string(a[i].Raw) != string(b[i].Raw) {
			return false
		}
	}
	return true
}

// mergeTimelineLimit caps the printed timeline; larger sessions print
// head and tail with an elision note (the merge itself is always
// checked in full).
const mergeTimelineLimit = 200

// mergeReport joins a client and a server trace into one timeline.
func mergeReport(clientPath, serverPath string, renderMSC bool, out io.Writer) error {
	cf, err := os.Open(clientPath)
	if err != nil {
		return err
	}
	defer cf.Close()
	clients, err := parseSessions(cf, clientPath)
	if err != nil {
		return err
	}
	sf, err := os.Open(serverPath)
	if err != nil {
		return err
	}
	defer sf.Close()
	servers, err := parseSessions(sf, serverPath)
	if err != nil {
		return err
	}

	var clientSessions []*mergeSession
	for _, s := range clients {
		if s.Side == "client" {
			clientSessions = append(clientSessions, s)
		}
	}
	if len(clientSessions) == 0 {
		return fmt.Errorf("%s: no client-side transport sessions (expected the client trace first)", clientPath)
	}
	var serverSessions []*mergeSession
	for _, s := range servers {
		if s.Side == "server" {
			serverSessions = append(serverSessions, s)
		}
	}
	if len(serverSessions) == 0 {
		return fmt.Errorf("%s: no server-side transport sessions", serverPath)
	}

	fmt.Fprintf(out, "merge: %s (client) + %s (server)\n", clientPath, serverPath)
	used := map[*mergeSession]bool{}
	for _, c := range clientSessions {
		s, err := matchSession(c, serverSessions, used)
		if err != nil {
			return err
		}
		if err := writeMergedSession(out, c, s, renderMSC); err != nil {
			return err
		}
	}
	return nil
}

// writeMergedSession prints one matched session pair: the agreement
// summary, the merged timeline (client order, both sides' local
// times), the violation list, and — with -msc — one two-sided chart of
// the schedule around each violation.
func writeMergedSession(out io.Writer, c, s *mergeSession, renderMSC bool) error {
	co, so := c.byOrigin(), s.byOrigin()
	tail := len(co["t"]) - len(so["t"])
	fmt.Fprintf(out, "\nsession %s n=%d w=%d fifo=%v (client #%d ↔ server #%d): %d merged events",
		c.Proto, c.N, c.W, c.FIFO, c.ID, s.ID, len(c.Events))
	if tail > 0 {
		fmt.Fprintf(out, " (+%d client-local tail)", tail)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "  origins agree: t %d/%d, r %d/%d events matched\n",
		len(so["t"]), len(so["t"]), len(so["r"]), len(co["r"]))
	fmt.Fprintf(out, "  verdicts: client %s; server %s\n", c.Verdict, s.Verdict)

	// The server's local time for event (origin, k), for annotation.
	serverTUS := func(ev mergeEvent) (int64, bool) {
		run := so[ev.Origin]
		if int(ev.K) < len(run) {
			return run[ev.K].TUS, true
		}
		return 0, false
	}

	// Decode the merged schedule once; the timeline and the MSC both
	// render from it.
	schedule := make(ioa.Schedule, len(c.Events))
	for i, ev := range c.Events {
		if err := json.Unmarshal(ev.Raw, &schedule[i]); err != nil {
			return fmt.Errorf("session %d event %d: %w", c.ID, i, err)
		}
	}

	fmt.Fprintln(out, "  timeline (client order; t_us per side):")
	fmt.Fprintf(out, "  %5s %-5s %12s %12s  %s\n", "#", "org/k", "client_us", "server_us", "action")
	printRow := func(i int) {
		ev := c.Events[i]
		server := "—"
		if tus, ok := serverTUS(ev); ok {
			server = fmt.Sprintf("%d", tus)
		}
		fmt.Fprintf(out, "  %5d %s/%-3d %12d %12s  %s\n", i+1, ev.Origin, ev.K, ev.TUS, server, schedule[i])
	}
	if len(c.Events) <= mergeTimelineLimit {
		for i := range c.Events {
			printRow(i)
		}
	} else {
		head, tailN := mergeTimelineLimit/2, mergeTimelineLimit/2
		for i := 0; i < head; i++ {
			printRow(i)
		}
		fmt.Fprintf(out, "  … %d events elided …\n", len(c.Events)-head-tailN)
		for i := len(c.Events) - tailN; i < len(c.Events); i++ {
			printRow(i)
		}
	}

	// Violations, union of both sides (each side judges the same
	// schedule, so positions are directly comparable).
	type key struct {
		prop, detail string
		pos          int
	}
	seen := map[key]string{}
	var order []key
	for side, vs := range map[string][]mergeViolation{"client": c.Violations, "server": s.Violations} {
		for _, v := range vs {
			k := key{v.Property, v.Detail, v.Pos}
			if prev, ok := seen[k]; ok {
				seen[k] = "both"
				_ = prev
				continue
			}
			seen[k] = side
			order = append(order, k)
		}
	}
	for _, k := range order {
		fmt.Fprintf(out, "  violation at event %d (%s): %s — %s\n", k.pos, seen[k], k.prop, k.detail)
		if renderMSC {
			start := k.pos - 16
			if start < 0 {
				start = 0
			}
			end := k.pos
			if end > len(schedule) {
				end = len(schedule)
			}
			fmt.Fprint(out, msc.Render(schedule[start:end], msc.Options{
				Annotate: func(i int, _ ioa.Action) string {
					ev := c.Events[start+i]
					return fmt.Sprintf("%s/%d", ev.Origin, ev.K)
				},
			}))
		}
	}
	return nil
}
