// Command obsreport summarises a JSONL trace produced by cmd/explore or
// cmd/swarm (the -trace flag): it validates every line against the
// internal/obs schema (exiting non-zero on the first malformed line),
// counts events, renders the explorer's per-depth table, summarises the
// final metrics snapshot (top counters, gauges, histogram quantiles),
// and lists the violations the trace carries. With -msc each violation's
// embedded schedule slice is rendered as a message sequence chart, every
// row annotated with its absolute step number in the original run.
//
// Traces with periodic metrics-snapshot events (the -snapshot-every flag
// of dlserve/loadgen/explore/swarm) additionally get a per-interval
// table: throughput deltas between consecutive snapshots and the
// delivery-latency quantiles at each point.
//
// With -merge, obsreport instead takes a client trace and a server trace
// of the same live TCP run (loadgen -trace and dlserve -trace) and joins
// their causally-linearized session streams into one timeline — see
// merge.go and DESIGN.md §10.
//
// Examples:
//
//	explore -protocol abp -crash r -msgs 1 -trace t.jsonl -metrics -
//	obsreport t.jsonl
//	obsreport -msc t.jsonl          # include violation charts
//	swarm -protocols abp-stuck -seeds 20 -trace s.jsonl
//	obsreport -msc s.jsonl
//	obsreport -merge client.jsonl server.jsonl
//	obsreport -merge -msc client.jsonl server.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/ioa"
	"repro/internal/msc"
	"repro/internal/obs"
)

func main() {
	renderMSC := flag.Bool("msc", false, "render each violation's schedule slice as a message sequence chart")
	top := flag.Int("top", 10, "how many counters to list from the metrics snapshot")
	merge := flag.Bool("merge", false, "join a client and a server trace of one live run into a single timeline")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: obsreport [-msc] [-top n] trace.jsonl")
		fmt.Fprintln(os.Stderr, "       obsreport -merge [-msc] client.jsonl server.jsonl")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *merge {
		if flag.NArg() != 2 {
			flag.Usage()
			os.Exit(2)
		}
		if err := mergeReport(flag.Arg(0), flag.Arg(1), *renderMSC, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "obsreport:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := report(f, flag.Arg(0), *renderMSC, *top, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
}

// levelEvent mirrors the explorer's explore.level trace event. The
// reduction fields are zero on traces from runs without -symmetry/-por.
type levelEvent struct {
	Depth           int     `json:"depth"`
	Frontier        int     `json:"frontier"`
	Admitted        int     `json:"admitted"`
	States          int64   `json:"states"`
	StatesPerSec    float64 `json:"states_per_sec"`
	SymmetryRenames int64   `json:"symmetry_renames"`
	PORPruned       int64   `json:"por_pruned"`
}

// violationEvent mirrors the explore.violation and swarm.violation
// events; fields absent from one producer stay zero.
type violationEvent struct {
	Event      string       `json:"event"`
	TUS        int64        `json:"t_us"`
	Combo      string       `json:"combo"`
	Seed       int64        `json:"seed"`
	Property   string       `json:"property"`
	Detail     string       `json:"detail"`
	Steps      int          `json:"steps"`
	StartIndex int          `json:"start_index"`
	Schedule   ioa.Schedule `json:"schedule"`
}

// checkpointEvent mirrors the explorer's explore.checkpoint event.
type checkpointEvent struct {
	Level       int     `json:"level"`
	Nodes       int     `json:"nodes"`
	SeenEntries int     `json:"seen_entries"`
	Bytes       int64   `json:"bytes"`
	DurationMS  float64 `json:"duration_ms"`
}

// metricsEvent mirrors the final metrics event both binaries emit.
type metricsEvent struct {
	Snapshot obs.Snapshot `json:"snapshot"`
}

// snapshotEvent mirrors the obs.Ticker's periodic metrics-snapshot
// event (the -snapshot-every flag).
type snapshotEvent struct {
	TUS        int64        `json:"t_us"`
	IntervalMS int64        `json:"interval_ms"`
	Snapshot   obs.Snapshot `json:"snapshot"`
}

// report validates and summarises one trace stream. Any schema
// violation aborts with an error: a trace that does not validate is a
// bug in the producer, not something to summarise around.
func report(r io.Reader, name string, renderMSC bool, top int, out io.Writer) error {
	var v obs.Validator
	counts := map[string]int64{}
	var levels []levelEvent
	var ckpts []checkpointEvent
	var violations []violationEvent
	var snaps []snapshotEvent
	var snap *obs.Snapshot
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		event, err := v.Line(line)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		counts[event]++
		switch event {
		case "explore.level":
			var le levelEvent
			if err := json.Unmarshal(line, &le); err != nil {
				return fmt.Errorf("%s: line %d: %w", name, v.Lines(), err)
			}
			levels = append(levels, le)
		case "explore.checkpoint":
			var ce checkpointEvent
			if err := json.Unmarshal(line, &ce); err != nil {
				return fmt.Errorf("%s: line %d: %w", name, v.Lines(), err)
			}
			ckpts = append(ckpts, ce)
		case "explore.violation", "swarm.violation":
			var ve violationEvent
			if err := json.Unmarshal(line, &ve); err != nil {
				return fmt.Errorf("%s: line %d: %w", name, v.Lines(), err)
			}
			violations = append(violations, ve)
		case "metrics-snapshot":
			var se snapshotEvent
			if err := json.Unmarshal(line, &se); err != nil {
				return fmt.Errorf("%s: line %d: %w", name, v.Lines(), err)
			}
			snaps = append(snaps, se)
		case "metrics":
			var me metricsEvent
			if err := json.Unmarshal(line, &me); err != nil {
				return fmt.Errorf("%s: line %d: %w", name, v.Lines(), err)
			}
			snap = &me.Snapshot
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if v.Lines() == 0 {
		return fmt.Errorf("%s: empty trace", name)
	}

	fmt.Fprintf(out, "%s: %d events, schema valid\n", name, v.Lines())
	fmt.Fprintln(out, "\nevents:")
	for _, ev := range sortedNames(counts) {
		fmt.Fprintf(out, "  %-20s %6d\n", ev, counts[ev])
	}
	if len(levels) > 0 {
		fmt.Fprintln(out, "\nper-depth:")
		fmt.Fprintf(out, "  %5s %9s %9s %9s %11s\n", "depth", "frontier", "admitted", "states", "states/sec")
		for _, le := range levels {
			fmt.Fprintf(out, "  %5d %9d %9d %9d %11.0f\n",
				le.Depth, le.Frontier, le.Admitted, le.States, le.StatesPerSec)
		}
	}
	if len(ckpts) > 0 {
		writeCheckpoints(out, ckpts)
	}
	if len(snaps) > 0 {
		writeIntervals(out, snaps)
	}
	writeReduction(out, levels, snap)
	if snap != nil {
		writeSnapshot(out, *snap, top)
	}
	for _, ve := range violations {
		fmt.Fprintf(out, "\nviolation (%s", ve.Event)
		if ve.Combo != "" {
			fmt.Fprintf(out, ", %s seed %d", ve.Combo, ve.Seed)
		}
		fmt.Fprintf(out, "): %s — %s\n", ve.Property, ve.Detail)
		fmt.Fprintf(out, "  %d schedule steps recorded", ve.Steps)
		if ve.StartIndex > 0 {
			fmt.Fprintf(out, ", showing steps %d..%d", ve.StartIndex+1, ve.StartIndex+len(ve.Schedule))
		}
		fmt.Fprintln(out)
		if renderMSC && len(ve.Schedule) > 0 {
			start := ve.StartIndex
			fmt.Fprint(out, msc.Render(ve.Schedule, msc.Options{
				Annotate: func(i int, _ ioa.Action) string {
					return fmt.Sprintf("step %d", start+i+1)
				},
			}))
		}
	}
	return nil
}

// writeCheckpoints summarises the explorer's durable snapshots: total
// write cost (the overhead a checkpointed run pays), plus the final
// checkpoint's shape — the one a resume would start from.
func writeCheckpoints(out io.Writer, ckpts []checkpointEvent) {
	var bytes int64
	var ms float64
	for _, c := range ckpts {
		bytes += c.Bytes
		ms += c.DurationMS
	}
	last := ckpts[len(ckpts)-1]
	fmt.Fprintf(out, "\ncheckpoints: %d written, %d bytes total in %.1f ms\n", len(ckpts), bytes, ms)
	fmt.Fprintf(out, "  last at level %d: %d frontier nodes, %d seen entries, %d bytes\n",
		last.Level, last.Nodes, last.SeenEntries, last.Bytes)
}

// writeIntervals renders the streamed metrics-snapshot series as a
// per-interval table: the work counter's delta and rate between
// consecutive snapshots, and the cumulative delivery-latency quantiles
// at each point. The work counter is whichever of the producers'
// throughput counters the trace actually moves: transport.msgs_delivered
// (serving path), explore.states_expanded (model checker) or swarm.steps.
func writeIntervals(out io.Writer, snaps []snapshotEvent) {
	counter := "transport.msgs_delivered"
	last := snaps[len(snaps)-1].Snapshot
	for _, name := range []string{"transport.msgs_delivered", "explore.states_expanded", "swarm.steps"} {
		if last.Counter(name) > 0 {
			counter = name
			break
		}
	}
	fmt.Fprintf(out, "\nsnapshot stream (%d snapshots, %s):\n", len(snaps), counter)
	fmt.Fprintf(out, "  %10s %10s %10s %12s %8s %8s %8s\n", "t_ms", "total", "delta", "per_sec", "p50µs", "p95µs", "p99µs")
	var prevTotal, prevTUS int64
	for i, se := range snaps {
		total := se.Snapshot.Counter(counter)
		delta := total - prevTotal
		rate := "—"
		if i > 0 && se.TUS > prevTUS {
			rate = fmt.Sprintf("%.0f", float64(delta)/(float64(se.TUS-prevTUS)/1e6))
		}
		p50, p95, p99 := "—", "—", "—"
		if lat, ok := se.Snapshot.Histogram("transport.delivery_latency"); ok && lat.Count > 0 {
			p50, p95, p99 = fmt.Sprint(lat.P50), fmt.Sprint(lat.P95), fmt.Sprint(lat.P99)
		}
		fmt.Fprintf(out, "  %10d %10d %10d %12s %8s %8s %8s\n",
			se.TUS/1000, total, delta, rate, p50, p95, p99)
		prevTotal, prevTUS = total, se.TUS
	}
}

// writeReduction summarises the symmetry/POR reductions when the trace
// carries any evidence of them: nonzero per-level rename/prune deltas,
// or the explore.symmetry_renames / explore.por_pruned counters and the
// explore.ample_size histogram in the final metrics snapshot. Traces
// from unreduced runs print nothing here.
func writeReduction(out io.Writer, levels []levelEvent, snap *obs.Snapshot) {
	var renames, pruned int64
	for _, le := range levels {
		renames += le.SymmetryRenames
		pruned += le.PORPruned
	}
	var ample *obs.HistogramSnapshot
	if snap != nil {
		for _, c := range snap.Counters {
			switch c.Name {
			case "explore.symmetry_renames":
				if c.Value > renames {
					renames = c.Value
				}
			case "explore.por_pruned":
				if c.Value > pruned {
					pruned = c.Value
				}
			}
		}
		for i, h := range snap.Histograms {
			if h.Name == "explore.ample_size" {
				ample = &snap.Histograms[i]
			}
		}
	}
	// The instruments are registered even on unreduced runs, so a
	// zero-count histogram or zero counters mean "reductions off" —
	// stay silent rather than printing an all-zero section.
	if renames == 0 && pruned == 0 && (ample == nil || ample.Count == 0) {
		return
	}
	fmt.Fprintln(out, "\nreduction:")
	fmt.Fprintf(out, "  symmetry renames     %10d\n", renames)
	fmt.Fprintf(out, "  por pruned           %10d\n", pruned)
	if ample != nil && ample.Count > 0 {
		fmt.Fprintf(out, "  ample-set size: mean %.1f, p50 %d, p90 %d, p99 %d over %d expansions\n",
			ample.Mean, ample.P50, ample.P90, ample.P99, ample.Count)
	}
	var active int
	for _, le := range levels {
		if le.SymmetryRenames > 0 || le.PORPruned > 0 {
			active++
		}
	}
	if active > 0 {
		fmt.Fprintf(out, "  %5s %10s %10s\n", "depth", "renames", "pruned")
		for _, le := range levels {
			if le.SymmetryRenames == 0 && le.PORPruned == 0 {
				continue
			}
			fmt.Fprintf(out, "  %5d %10d %10d\n", le.Depth, le.SymmetryRenames, le.PORPruned)
		}
	}
}

// writeSnapshot prints the metrics snapshot: top counters by value, all
// gauges, and every histogram's quantile summary.
func writeSnapshot(out io.Writer, snap obs.Snapshot, top int) {
	if len(snap.Counters) > 0 {
		counters := append([]obs.CounterSnapshot(nil), snap.Counters...)
		sort.SliceStable(counters, func(i, j int) bool { return counters[i].Value > counters[j].Value })
		if top > 0 && len(counters) > top {
			counters = counters[:top]
		}
		fmt.Fprintf(out, "\ntop counters (%d of %d):\n", len(counters), len(snap.Counters))
		for _, c := range counters {
			fmt.Fprintf(out, "  %-28s %10d\n", c.Name, c.Value)
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Fprintln(out, "\ngauges:")
		for _, g := range snap.Gauges {
			fmt.Fprintf(out, "  %-28s %10d\n", g.Name, g.Value)
		}
	}
	if len(snap.Histograms) > 0 {
		fmt.Fprintln(out, "\nhistograms:")
		fmt.Fprintf(out, "  %-28s %8s %8s %6s %6s %6s\n", "name", "count", "mean", "p50", "p90", "p99")
		for _, h := range snap.Histograms {
			fmt.Fprintf(out, "  %-28s %8d %8.1f %6d %6d %6d\n", h.Name, h.Count, h.Mean, h.P50, h.P90, h.P99)
		}
	}
}

// sortedNames returns the map's keys in sorted order.
func sortedNames(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
