package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/ioa"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// liveTracePair runs one real TCP session with both endpoints tracing
// and returns the two trace paths — exactly what `loadgen -trace` and
// `dlserve -trace` produce.
func liveTracePair(t *testing.T, msgs int) (client, server string) {
	t.Helper()
	dir := t.TempDir()
	client = filepath.Join(dir, "client.jsonl")
	server = filepath.Join(dir, "server.jsonl")
	serverTrace, err := obs.OpenTrace(server)
	if err != nil {
		t.Fatal(err)
	}
	clientTrace, err := obs.OpenTrace(client)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		errc <- transport.Serve(ln, transport.ServerConfig{
			Resolve: protocol.ByName, MaxSessions: 1, Trace: serverTrace,
		})
	}()
	p, err := protocol.ByName("gbn", 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := transport.Dial(ln.Addr().String(), transport.ClientConfig{
		Protocol: p, ProtoName: "gbn", N: 8, W: 3, FIFO: true,
		Msgs: msgs, Timeout: 20 * time.Second,
		Trace: clientTrace, Session: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if err := clientTrace.Close(); err != nil {
		t.Fatal(err)
	}
	if err := serverTrace.Close(); err != nil {
		t.Fatal(err)
	}
	return client, server
}

// TestMergeLiveTraces joins a real client/server trace pair into one
// causally-ordered timeline: the sessions match, every merged row
// carries both sides' local timestamps, and the verdicts line reports
// both seals.
func TestMergeLiveTraces(t *testing.T) {
	client, server := liveTracePair(t, 12)
	var out bytes.Buffer
	if err := mergeReport(client, server, false, &out); err != nil {
		t.Fatalf("mergeReport: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, frag := range []string{
		"merge:",
		"session gbn n=8 w=3 fifo=true (client #1 ↔ server #1)",
		"merged events",
		"origins agree",
		"verdicts: client DL^{t,r}: OK",
		"timeline (client order",
		" t/0 ",
		" r/0 ",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("merge output missing %q:\n%s", frag, s)
		}
	}
	if strings.Contains(s, "violation at event") {
		t.Errorf("clean run reported a violation:\n%s", s)
	}
	// Every timeline row must show a server-side timestamp except the
	// client's post-Bye local tail.
	inTimeline := false
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "timeline (") {
			inTimeline = true
			continue
		}
		if inTimeline && strings.Contains(line, " t/") && strings.Contains(line, "—") {
			// client-local tail rows are the only ones without a server time
			if !strings.Contains(s, "client-local tail") {
				t.Errorf("unmatched timeline row without a tail note: %q", line)
			}
		}
	}
}

// synthTrace writes a hand-built session trace — the violating pair the
// live TCP path cannot produce without a faulty link.
func synthTrace(t *testing.T, path, side string, station ioa.Station, session int64,
	events []ioa.Action, origins []ioa.Station, violationAt int, verdict string, clean bool) {
	t.Helper()
	tr, err := obs.OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit("transport.session",
		obs.Int("session", session), obs.Str("side", side), obs.Str("station", string(station)),
		obs.Str("proto", "abp"), obs.Int("n", 2), obs.Int("w", 1), obs.Bool("fifo", true))
	k := map[ioa.Station]int64{}
	for i, a := range events {
		if i == violationAt {
			tr.Emit("transport.violation",
				obs.Int("session", session),
				obs.Str("property", "DL2"), obs.Str("detail", "m1 delivered twice"))
		}
		o := origins[i]
		tr.Emit("transport.event",
			obs.Int("session", session), obs.Str("origin", string(o)),
			obs.Int("k", k[o]), obs.JSON("action", a))
		k[o]++
	}
	if violationAt == len(events) {
		tr.Emit("transport.violation",
			obs.Int("session", session),
			obs.Str("property", "DL2"), obs.Str("detail", "m1 delivered twice"))
	}
	tr.Emit("transport.seal",
		obs.Int("session", session), obs.Str("verdict", verdict),
		obs.Bool("clean", clean), obs.Int("delivered", 2))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMergeViolationMSC merges a synthesized violating pair and expects
// the violation at its causal position plus, with -msc, a single
// two-sided chart of the schedule leading up to it, annotated with the
// (origin, k) merge keys.
func TestMergeViolationMSC(t *testing.T) {
	dir := t.TempDir()
	client := filepath.Join(dir, "client.jsonl")
	server := filepath.Join(dir, "server.jsonl")
	pkt := ioa.Packet{ID: 1, Payload: "m1"}
	events := []ioa.Action{
		ioa.SendMsg(ioa.TR, "m1"),
		ioa.SendPkt(ioa.TR, pkt),
		ioa.ReceivePkt(ioa.TR, pkt),
		ioa.ReceiveMsg(ioa.TR, "m1"),
		ioa.ReceiveMsg(ioa.TR, "m1"), // duplicate delivery
	}
	origins := []ioa.Station{ioa.T, ioa.T, ioa.R, ioa.R, ioa.R}
	synthTrace(t, client, "client", ioa.T, 1, events, origins, 5, "DL2: duplicate", false)
	synthTrace(t, server, "server", ioa.R, 1, events, origins, 5, "DL2: duplicate", false)

	var out bytes.Buffer
	if err := mergeReport(client, server, true, &out); err != nil {
		t.Fatalf("mergeReport: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, frag := range []string{
		"violation at event 5 (both): DL2 — m1 delivered twice",
		"[t/0]", // msc annotation uses the merge key
		"[r/2]",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("merge output missing %q:\n%s", frag, s)
		}
	}
	if n := strings.Count(s, "violation at event"); n != 1 {
		t.Errorf("both-sides violation deduplicated to %d lines, want 1:\n%s", n, s)
	}
}

// TestMergeRejectsMismatch: traces of different sessions must not pair.
func TestMergeRejectsMismatch(t *testing.T) {
	dir := t.TempDir()
	client := filepath.Join(dir, "client.jsonl")
	server := filepath.Join(dir, "server.jsonl")
	events := []ioa.Action{ioa.SendMsg(ioa.TR, "m1")}
	origins := []ioa.Station{ioa.T}
	other := []ioa.Action{ioa.SendMsg(ioa.TR, "m2")}
	synthTrace(t, client, "client", ioa.T, 1, events, origins, -1, "OK", true)
	synthTrace(t, server, "server", ioa.R, 1, other, origins, -1, "OK", true)
	var out bytes.Buffer
	if err := mergeReport(client, server, false, &out); err == nil ||
		!strings.Contains(err.Error(), "no server session matches") {
		t.Fatalf("mismatched traces merged: %v\n%s", err, out.String())
	}
}

// TestMergeRejectsSwappedArgs: handing the server trace as the client
// argument is a usage error, not a silent empty merge.
func TestMergeRejectsSwappedArgs(t *testing.T) {
	client, server := liveTracePair(t, 3)
	var out bytes.Buffer
	if err := mergeReport(server, client, false, &out); err == nil ||
		!strings.Contains(err.Error(), "no client-side transport sessions") {
		t.Fatalf("swapped arguments accepted: %v", err)
	}
}

// TestParseSessionsRejectsGappedK: a trace whose per-origin indices skip
// is corrupt — the merge key's integrity check must catch it.
func TestParseSessionsRejectsGappedK(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	tr, err := obs.OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit("transport.session",
		obs.Int("session", 1), obs.Str("side", "client"), obs.Str("station", "t"),
		obs.Str("proto", "abp"), obs.Int("n", 2), obs.Int("w", 1), obs.Bool("fifo", true))
	tr.Emit("transport.event",
		obs.Int("session", 1), obs.Str("origin", "t"), obs.Int("k", 1),
		obs.JSON("action", ioa.SendMsg(ioa.TR, "m1")))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := parseSessions(f, path); err == nil || !strings.Contains(err.Error(), "want 0") {
		t.Fatalf("gapped k accepted: %v", err)
	}
}
