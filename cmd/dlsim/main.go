// Command dlsim runs a data link protocol over a pair of permissive
// physical channels, drives it with a batch of messages under a chosen
// scheduler, and checks the resulting behavior against the paper's layer
// specifications: DL and WDL for the data link behavior, PL / PL-FIFO for
// each channel's packet schedule.
//
// Examples:
//
//	dlsim -protocol gbn -n 8 -w 3 -msgs 20
//	dlsim -protocol stenning -fifo=false -seed 7 -msgs 10
//	dlsim -protocol nv -crashes 3 -msgs 10 -v
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/msc"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/spec"
)

func main() {
	var (
		proto   = flag.String("protocol", "abp", fmt.Sprintf("protocol: %v", protocol.Names()))
		n       = flag.Int("n", 8, "Go-Back-N modulus")
		w       = flag.Int("w", 3, "Go-Back-N window")
		fifo    = flag.Bool("fifo", true, "use FIFO physical channels (Ĉ) instead of reordering ones (C̄)")
		msgs    = flag.Int("msgs", 10, "messages to send")
		seed    = flag.Int64("seed", 0, "if nonzero, use a seeded random scheduler before settling")
		crashes = flag.Int("crashes", 0, "random crash/recovery events to inject")
		verbose = flag.Bool("v", false, "print the full data link behavior")
		chart   = flag.Bool("msc", false, "print the execution as a message sequence chart")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "dlsim: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*proto, *n, *w, *fifo, *msgs, *seed, *crashes, *verbose, *chart); err != nil {
		fmt.Fprintln(os.Stderr, "dlsim:", err)
		os.Exit(1)
	}
}

func run(proto string, n, w int, fifo bool, msgs int, seed int64, crashes int, verbose, chart bool) error {
	p, err := protocol.ByName(proto, n, w)
	if err != nil {
		return err
	}
	if p.Props.RequiresFIFO && !fifo {
		fmt.Printf("note: %s is only claimed correct over FIFO channels; running it over C̄ anyway\n", p.Name)
	}
	sys, err := core.NewSystem(p, fifo)
	if err != nil {
		return err
	}
	r := sim.NewRunner(sys)
	if err := r.WakeBoth(); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(seed))
	crashAt := map[int]bool{}
	for i := 0; i < crashes; i++ {
		crashAt[rng.Intn(msgs)] = true
	}
	for i := 0; i < msgs; i++ {
		if crashAt[i] {
			dir := ioa.TR
			if rng.Intn(2) == 0 {
				dir = ioa.RT
			}
			fmt.Printf("injecting crash^{%s} before message %d\n", dir, i)
			if err := r.Input(ioa.Crash(dir)); err != nil {
				return err
			}
			if err := r.Input(ioa.Wake(dir)); err != nil {
				return err
			}
		}
		if err := r.Input(ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("msg-%d", i)))); err != nil {
			return err
		}
		if seed != 0 {
			// A truncated random burst is expected; anything else is real.
			if _, err := r.RunFair(sim.RunConfig{MaxSteps: 50, Rand: rng}); err != nil && !errors.Is(err, sim.ErrStepLimit) {
				return err
			}
		}
	}
	quiescent, err := r.RunFair(sim.RunConfig{})
	if err != nil {
		return err
	}
	beh := r.Behavior()
	if verbose {
		fmt.Println("data link behavior:")
		fmt.Print(ioa.FormatSchedule(beh))
	}
	if chart {
		fmt.Println("message sequence chart:")
		fmt.Print(msc.Render(r.Schedule(), msc.Options{}))
	}

	delivered := 0
	for _, a := range beh {
		if a.Kind == ioa.KindReceiveMsg {
			delivered++
		}
	}
	fmt.Printf("protocol=%s channels=%s steps=%d quiescent=%t sent=%d delivered=%d\n",
		p.Name, channelKind(fifo), r.Execution().Len(), quiescent, msgs, delivered)
	fmt.Printf("  DL  verdict: %s\n", spec.CheckDL(beh, ioa.TR))
	fmt.Printf("  WDL verdict: %s\n", spec.CheckWDL(beh, ioa.TR))
	for _, d := range []ioa.Dir{ioa.TR, ioa.RT} {
		ps := r.PacketSchedule(d)
		var v spec.Verdict
		if fifo {
			v = spec.CheckPLFIFO(ps, d)
			fmt.Printf("  PL-FIFO^{%s} verdict (%d events): %s\n", d, len(ps), v)
		} else {
			v = spec.CheckPL(ps, d)
			fmt.Printf("  PL^{%s} verdict (%d events): %s\n", d, len(ps), v)
		}
	}
	return nil
}

func channelKind(fifo bool) string {
	if fifo {
		return "Ĉ(FIFO)"
	}
	return "C̄(reordering)"
}
