package main

import "testing"

func TestRunConfigurations(t *testing.T) {
	tests := []struct {
		name    string
		proto   string
		n, w    int
		fifo    bool
		msgs    int
		seed    int64
		crashes int
		ok      bool
	}{
		{"abp-fifo", "abp", 0, 0, true, 5, 0, 0, true},
		{"gbn", "gbn", 8, 3, true, 5, 0, 0, true},
		{"sr", "sr", 8, 4, true, 5, 0, 0, true},
		{"frag", "frag", 4, 2, true, 4, 0, 0, true},
		{"hs", "hs", 0, 0, true, 4, 0, 0, true},
		{"stenning-nonfifo", "stenning", 0, 0, false, 5, 7, 0, true},
		{"nv-crashes", "nv", 0, 0, true, 5, 3, 2, true},
		{"unknown-protocol", "nope", 0, 0, true, 1, 0, 0, false},
		{"bad-gbn-window", "gbn", 4, 9, true, 1, 0, 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(tt.proto, tt.n, tt.w, tt.fifo, tt.msgs, tt.seed, tt.crashes, false, true)
			if (err == nil) != tt.ok {
				t.Errorf("run() err = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestChannelKind(t *testing.T) {
	if channelKind(true) == channelKind(false) {
		t.Error("channel kinds must differ")
	}
}
