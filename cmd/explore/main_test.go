package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/explore"
	"repro/internal/ioa"
	"repro/internal/obs"
)

func TestCrashFlags(t *testing.T) {
	var c crashFlags
	if err := c.Set("t"); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("r"); err != nil {
		t.Fatal(err)
	}
	if len(c) != 2 || c[0] != ioa.TR || c[1] != ioa.RT {
		t.Errorf("crashFlags = %v", c)
	}
	if err := c.Set("x"); err == nil {
		t.Error("expected error for bad station")
	}
	if c.String() == "" {
		t.Error("String() empty")
	}
}

func TestRunFindsAndVerifies(t *testing.T) {
	base := options{n: 2, w: 1, maxStates: explore.DefaultMaxStates, workers: 2, progress: io.Discard}
	// Finds the reordering bug.
	o := base
	o.proto, o.msgs, o.depth, o.inTransit = "gbn", 3, 26, 3
	if err := run(o, io.Discard); err != nil {
		t.Errorf("gbn search: %v", err)
	}
	// Verifies ABP over FIFO without crashes, with profiles written.
	o = base
	o.proto, o.fifo, o.msgs, o.depth, o.inTransit = "abp", true, 2, 18, 2
	o.cpuProfile = t.TempDir() + "/cpu.pprof"
	o.memProfile = t.TempDir() + "/mem.pprof"
	if err := run(o, io.Discard); err != nil {
		t.Errorf("abp verify: %v", err)
	}
	for _, path := range []string{o.cpuProfile, o.memProfile} {
		if st, err := os.Stat(path); err != nil || st.Size() == 0 {
			t.Errorf("profile %s not written (err=%v)", path, err)
		}
	}
	// Finds the crash bug (exact-dedup path).
	o = base
	o.proto, o.fifo, o.msgs, o.depth, o.inTransit = "abp", true, 1, 20, 2
	o.crashes = []ioa.Dir{ioa.RT}
	o.exactDedup = true
	if err := run(o, io.Discard); err != nil {
		t.Errorf("abp crash search: %v", err)
	}
	// Unknown protocol errors.
	o = base
	o.proto, o.fifo, o.msgs, o.depth, o.inTransit, o.maxStates = "nope", true, 1, 5, 1, 100
	if err := run(o, io.Discard); err == nil {
		t.Error("expected error for unknown protocol")
	}
}

// violatingOptions is the Thm 7.5 configuration: the volatile ABP
// receiver with a crash event, whose search exits early on a violation.
func violatingOptions(dir string) options {
	return options{
		proto: "abp", n: 2, w: 1, fifo: true,
		msgs: 1, depth: 20, inTransit: 2, maxStates: explore.DefaultMaxStates,
		crashes:    []ioa.Dir{ioa.RT},
		workers:    2,
		cpuProfile: filepath.Join(dir, "cpu.pprof"),
		memProfile: filepath.Join(dir, "mem.pprof"),
		progress:   io.Discard,
	}
}

// TestProfilesFlushedOnViolationPath is the regression test for the
// profile teardown: when the search exits early on a violation, both
// pprof artifacts must still be complete files (pprof output is gzip, so
// a flushed profile starts with the gzip magic).
func TestProfilesFlushedOnViolationPath(t *testing.T) {
	dir := t.TempDir()
	o := violatingOptions(dir)
	var out bytes.Buffer
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "VIOLATION") {
		t.Fatalf("expected the crash-ABP search to violate:\n%s", out.String())
	}
	for _, name := range []string{"cpu.pprof", "mem.pprof"} {
		blob, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(blob) < 2 || blob[0] != 0x1f || blob[1] != 0x8b {
			t.Errorf("%s is not a flushed gzip pprof artifact (%d bytes)", name, len(blob))
		}
	}
}

// TestTraceAndMetricsFlags runs the violating search with -trace and
// -metrics and checks both artifacts: the metrics file is valid JSON
// with the acceptance consistency invariant (expanded == Σ per-worker),
// and the trace is schema-valid JSONL ending in the final metrics event.
func TestTraceAndMetricsFlags(t *testing.T) {
	dir := t.TempDir()
	o := violatingOptions(dir)
	o.cpuProfile, o.memProfile = "", ""
	o.tracePath = filepath.Join(dir, "trace.jsonl")
	o.metrics = filepath.Join(dir, "metrics.json")
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}

	blob, err := os.ReadFile(o.metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatalf("metrics file is not valid snapshot JSON: %v", err)
	}
	expanded := snap.Counter("explore.states_expanded")
	var workerSum int64
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.Name, "explore.worker.") {
			workerSum += c.Value
		}
	}
	if expanded == 0 || expanded != workerSum {
		t.Errorf("states_expanded = %d, per-worker sum = %d", expanded, workerSum)
	}

	tf, err := os.Open(o.tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	var v obs.Validator
	var lastEvent string
	sawViolation := false
	sc := bufio.NewScanner(tf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		event, err := v.Line(sc.Bytes())
		if err != nil {
			t.Fatalf("trace line invalid: %v", err)
		}
		lastEvent = event
		if event == "explore.violation" {
			sawViolation = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawViolation {
		t.Error("trace has no explore.violation event")
	}
	if lastEvent != "metrics" {
		t.Errorf("trace ends with %q, want the final metrics event", lastEvent)
	}
}

// interruptAtLevel arms o to deliver a real SIGINT to this process once
// the search reaches the given BFS level. The test registers its own
// signal channel first, so the process default (termination) is never in
// play; waiting for the signal to land on that channel plus a short
// grace period guarantees run's own handler has closed its stop channel
// before the level barrier polls it.
func interruptAtLevel(t *testing.T, o *options, level int) {
	t.Helper()
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt)
	t.Cleanup(func() { signal.Stop(sigs) })
	var once sync.Once
	o.onLevel = func(ls explore.LevelStats) {
		if ls.Depth+1 >= level {
			once.Do(func() {
				if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
					t.Errorf("self-SIGINT: %v", err)
					return
				}
				<-sigs
				time.Sleep(100 * time.Millisecond)
			})
		}
	}
}

// TestSignaledRunFlushesArtifacts: a SIGINT mid-search stops gracefully
// (errInterrupted), writes a resumable checkpoint, and still flushes a
// schema-valid obs trace, the metrics snapshot and both profiles — the
// regression test for interrupt teardown losing buffered artifacts.
func TestSignaledRunFlushesArtifacts(t *testing.T) {
	dir := t.TempDir()
	o := violatingOptions(dir)
	o.workers = 1
	o.tracePath = filepath.Join(dir, "trace.jsonl")
	o.metrics = filepath.Join(dir, "metrics.json")
	o.checkpoint = filepath.Join(dir, "ck.jsonl")
	o.ckptEvery = "1"
	interruptAtLevel(t, &o, 3)
	var out bytes.Buffer
	if err := run(o, &out); !errors.Is(err, errInterrupted) {
		t.Fatalf("run = %v, want errInterrupted\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "interrupted at a level barrier") {
		t.Errorf("missing interruption report:\n%s", out.String())
	}

	// The checkpoint must decode cleanly.
	if _, err := explore.ReadCheckpoint(o.checkpoint); err != nil {
		t.Errorf("checkpoint after SIGINT: %v", err)
	}
	// The trace must be schema-valid JSONL ending in the metrics event.
	blob, err := os.ReadFile(o.tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var v obs.Validator
	lastEvent, sawCkpt := "", false
	sc := bufio.NewScanner(bytes.NewReader(blob))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		event, err := v.Line(sc.Bytes())
		if err != nil {
			t.Fatalf("trace line invalid after SIGINT: %v", err)
		}
		lastEvent = event
		if event == "explore.checkpoint" {
			sawCkpt = true
		}
	}
	if lastEvent != "metrics" {
		t.Errorf("signaled trace ends with %q, want the final metrics event", lastEvent)
	}
	if !sawCkpt {
		t.Error("trace has no explore.checkpoint event")
	}
	// The metrics snapshot and both profiles must be complete files.
	if _, err := os.Stat(o.metrics); err != nil {
		t.Errorf("metrics not flushed: %v", err)
	}
	for _, name := range []string{"cpu.pprof", "mem.pprof"} {
		if pb, err := os.ReadFile(filepath.Join(dir, name)); err != nil || len(pb) < 2 || pb[0] != 0x1f || pb[1] != 0x8b {
			t.Errorf("%s not a flushed gzip profile after SIGINT (err=%v)", name, err)
		}
	}
}

// TestResumeFlagReproducesBaseline: interrupt a sequential violating
// search by real SIGINT, resume it with -resume, and demand the resumed
// run report the same cumulative state count and the identical violation
// trace as an uninterrupted baseline.
func TestResumeFlagReproducesBaseline(t *testing.T) {
	dir := t.TempDir()
	base := violatingOptions(dir)
	base.cpuProfile, base.memProfile = "", ""
	base.workers = 1
	var want bytes.Buffer
	if err := run(base, &want); err != nil {
		t.Fatal(err)
	}

	o := base
	o.checkpoint = filepath.Join(dir, "ck.jsonl")
	interruptAtLevel(t, &o, 4)
	if err := run(o, io.Discard); !errors.Is(err, errInterrupted) {
		t.Fatalf("interrupted run = %v, want errInterrupted", err)
	}

	r := base
	r.resume = o.checkpoint
	var got bytes.Buffer
	if err := run(r, &got); err != nil {
		t.Fatal(err)
	}
	// The violation section (property + trace) must match verbatim; the
	// summary line's timing varies, but the state count must not.
	tail := func(s string) string {
		i := strings.Index(s, "VIOLATION")
		if i < 0 {
			return ""
		}
		return s[i:]
	}
	if tail(got.String()) == "" || tail(got.String()) != tail(want.String()) {
		t.Errorf("resumed violation section differs:\ngot:\n%s\nwant:\n%s", got.String(), want.String())
	}
	states := func(s string) string {
		m := regexp.MustCompile(`explored (\d+) states`).FindStringSubmatch(s)
		if m == nil {
			return ""
		}
		return m[1]
	}
	if g, w := states(got.String()), states(want.String()); g == "" || g != w {
		t.Errorf("resumed cumulative states = %s, want %s", g, w)
	}
}

func TestParseCheckpointEvery(t *testing.T) {
	if l, d, err := parseCheckpointEvery("5"); err != nil || l != 5 || d != 0 {
		t.Errorf("parse 5 = (%d, %v, %v)", l, d, err)
	}
	if l, d, err := parseCheckpointEvery("30s"); err != nil || l != 0 || d != 30*time.Second {
		t.Errorf("parse 30s = (%d, %v, %v)", l, d, err)
	}
	for _, bad := range []string{"", "0", "-1", "x", "-2s"} {
		if _, _, err := parseCheckpointEvery(bad); err == nil {
			t.Errorf("parse %q: expected error", bad)
		}
	}
}

// TestSnapshotStreaming: with -snapshot-every and no -metrics, the
// search still gets a registry, the trace carries periodic
// metrics-snapshot events while levels run, and obsreport's terminal
// metrics event is appended — but no metrics file is written.
func TestSnapshotStreaming(t *testing.T) {
	dir := t.TempDir()
	o := options{
		proto: "abp", n: 2, w: 1, fifo: true,
		msgs: 2, depth: 18, inTransit: 2, maxStates: explore.DefaultMaxStates,
		workers: 2, progress: io.Discard,
		tracePath: filepath.Join(dir, "trace.jsonl"),
		snapEvery: time.Millisecond,
		// Pin each level long enough that the ticker is guaranteed to
		// fire at least once during the search, regardless of load.
		onLevel: func(explore.LevelStats) { time.Sleep(3 * time.Millisecond) },
	}
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
	tf, err := os.Open(o.tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	var v obs.Validator
	events := map[string]int{}
	sc := bufio.NewScanner(tf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		event, err := v.Line(sc.Bytes())
		if err != nil {
			t.Fatalf("trace line invalid: %v", err)
		}
		events[event]++
	}
	if events["metrics-snapshot"] == 0 {
		t.Errorf("no metrics-snapshot events streamed: %v", events)
	}
	if events["metrics"] != 1 {
		t.Errorf("terminal metrics event count = %d, want 1: %v", events["metrics"], events)
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 1 {
		t.Errorf("expected only the trace in %s, got %v", dir, entries)
	}
}
