package main

import (
	"testing"

	"repro/internal/explore"
	"repro/internal/ioa"
)

func TestCrashFlags(t *testing.T) {
	var c crashFlags
	if err := c.Set("t"); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("r"); err != nil {
		t.Fatal(err)
	}
	if len(c) != 2 || c[0] != ioa.TR || c[1] != ioa.RT {
		t.Errorf("crashFlags = %v", c)
	}
	if err := c.Set("x"); err == nil {
		t.Error("expected error for bad station")
	}
	if c.String() == "" {
		t.Error("String() empty")
	}
}

func TestRunFindsAndVerifies(t *testing.T) {
	// Finds the reordering bug.
	if err := run("gbn", 2, 1, false, 3, 26, 3, explore.DefaultMaxStates, false, nil); err != nil {
		t.Errorf("gbn search: %v", err)
	}
	// Verifies ABP over FIFO without crashes.
	if err := run("abp", 0, 0, true, 2, 18, 2, explore.DefaultMaxStates, false, nil); err != nil {
		t.Errorf("abp verify: %v", err)
	}
	// Finds the crash bug.
	if err := run("abp", 0, 0, true, 1, 20, 2, explore.DefaultMaxStates, false, []ioa.Dir{ioa.RT}); err != nil {
		t.Errorf("abp crash search: %v", err)
	}
	// Unknown protocol errors.
	if err := run("nope", 0, 0, true, 1, 5, 1, 100, false, nil); err == nil {
		t.Error("expected error for unknown protocol")
	}
}
