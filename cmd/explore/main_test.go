package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/ioa"
	"repro/internal/obs"
)

func TestCrashFlags(t *testing.T) {
	var c crashFlags
	if err := c.Set("t"); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("r"); err != nil {
		t.Fatal(err)
	}
	if len(c) != 2 || c[0] != ioa.TR || c[1] != ioa.RT {
		t.Errorf("crashFlags = %v", c)
	}
	if err := c.Set("x"); err == nil {
		t.Error("expected error for bad station")
	}
	if c.String() == "" {
		t.Error("String() empty")
	}
}

func TestRunFindsAndVerifies(t *testing.T) {
	base := options{n: 2, w: 1, maxStates: explore.DefaultMaxStates, workers: 2, progress: io.Discard}
	// Finds the reordering bug.
	o := base
	o.proto, o.msgs, o.depth, o.inTransit = "gbn", 3, 26, 3
	if err := run(o, io.Discard); err != nil {
		t.Errorf("gbn search: %v", err)
	}
	// Verifies ABP over FIFO without crashes, with profiles written.
	o = base
	o.proto, o.fifo, o.msgs, o.depth, o.inTransit = "abp", true, 2, 18, 2
	o.cpuProfile = t.TempDir() + "/cpu.pprof"
	o.memProfile = t.TempDir() + "/mem.pprof"
	if err := run(o, io.Discard); err != nil {
		t.Errorf("abp verify: %v", err)
	}
	for _, path := range []string{o.cpuProfile, o.memProfile} {
		if st, err := os.Stat(path); err != nil || st.Size() == 0 {
			t.Errorf("profile %s not written (err=%v)", path, err)
		}
	}
	// Finds the crash bug (exact-dedup path).
	o = base
	o.proto, o.fifo, o.msgs, o.depth, o.inTransit = "abp", true, 1, 20, 2
	o.crashes = []ioa.Dir{ioa.RT}
	o.exactDedup = true
	if err := run(o, io.Discard); err != nil {
		t.Errorf("abp crash search: %v", err)
	}
	// Unknown protocol errors.
	o = base
	o.proto, o.fifo, o.msgs, o.depth, o.inTransit, o.maxStates = "nope", true, 1, 5, 1, 100
	if err := run(o, io.Discard); err == nil {
		t.Error("expected error for unknown protocol")
	}
}

// violatingOptions is the Thm 7.5 configuration: the volatile ABP
// receiver with a crash event, whose search exits early on a violation.
func violatingOptions(dir string) options {
	return options{
		proto: "abp", n: 2, w: 1, fifo: true,
		msgs: 1, depth: 20, inTransit: 2, maxStates: explore.DefaultMaxStates,
		crashes:    []ioa.Dir{ioa.RT},
		workers:    2,
		cpuProfile: filepath.Join(dir, "cpu.pprof"),
		memProfile: filepath.Join(dir, "mem.pprof"),
		progress:   io.Discard,
	}
}

// TestProfilesFlushedOnViolationPath is the regression test for the
// profile teardown: when the search exits early on a violation, both
// pprof artifacts must still be complete files (pprof output is gzip, so
// a flushed profile starts with the gzip magic).
func TestProfilesFlushedOnViolationPath(t *testing.T) {
	dir := t.TempDir()
	o := violatingOptions(dir)
	var out bytes.Buffer
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "VIOLATION") {
		t.Fatalf("expected the crash-ABP search to violate:\n%s", out.String())
	}
	for _, name := range []string{"cpu.pprof", "mem.pprof"} {
		blob, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(blob) < 2 || blob[0] != 0x1f || blob[1] != 0x8b {
			t.Errorf("%s is not a flushed gzip pprof artifact (%d bytes)", name, len(blob))
		}
	}
}

// TestTraceAndMetricsFlags runs the violating search with -trace and
// -metrics and checks both artifacts: the metrics file is valid JSON
// with the acceptance consistency invariant (expanded == Σ per-worker),
// and the trace is schema-valid JSONL ending in the final metrics event.
func TestTraceAndMetricsFlags(t *testing.T) {
	dir := t.TempDir()
	o := violatingOptions(dir)
	o.cpuProfile, o.memProfile = "", ""
	o.tracePath = filepath.Join(dir, "trace.jsonl")
	o.metrics = filepath.Join(dir, "metrics.json")
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}

	blob, err := os.ReadFile(o.metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatalf("metrics file is not valid snapshot JSON: %v", err)
	}
	expanded := snap.Counter("explore.states_expanded")
	var workerSum int64
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.Name, "explore.worker.") {
			workerSum += c.Value
		}
	}
	if expanded == 0 || expanded != workerSum {
		t.Errorf("states_expanded = %d, per-worker sum = %d", expanded, workerSum)
	}

	tf, err := os.Open(o.tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	var v obs.Validator
	var lastEvent string
	sawViolation := false
	sc := bufio.NewScanner(tf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		event, err := v.Line(sc.Bytes())
		if err != nil {
			t.Fatalf("trace line invalid: %v", err)
		}
		lastEvent = event
		if event == "explore.violation" {
			sawViolation = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawViolation {
		t.Error("trace has no explore.violation event")
	}
	if lastEvent != "metrics" {
		t.Errorf("trace ends with %q, want the final metrics event", lastEvent)
	}
}
