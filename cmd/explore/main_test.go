package main

import (
	"os"
	"testing"

	"repro/internal/explore"
	"repro/internal/ioa"
)

func TestCrashFlags(t *testing.T) {
	var c crashFlags
	if err := c.Set("t"); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("r"); err != nil {
		t.Fatal(err)
	}
	if len(c) != 2 || c[0] != ioa.TR || c[1] != ioa.RT {
		t.Errorf("crashFlags = %v", c)
	}
	if err := c.Set("x"); err == nil {
		t.Error("expected error for bad station")
	}
	if c.String() == "" {
		t.Error("String() empty")
	}
}

func TestRunFindsAndVerifies(t *testing.T) {
	base := options{n: 2, w: 1, maxStates: explore.DefaultMaxStates, workers: 2}
	// Finds the reordering bug.
	o := base
	o.proto, o.msgs, o.depth, o.inTransit = "gbn", 3, 26, 3
	if err := run(o); err != nil {
		t.Errorf("gbn search: %v", err)
	}
	// Verifies ABP over FIFO without crashes, with profiles written.
	o = base
	o.proto, o.fifo, o.msgs, o.depth, o.inTransit = "abp", true, 2, 18, 2
	o.cpuProfile = t.TempDir() + "/cpu.pprof"
	o.memProfile = t.TempDir() + "/mem.pprof"
	if err := run(o); err != nil {
		t.Errorf("abp verify: %v", err)
	}
	for _, path := range []string{o.cpuProfile, o.memProfile} {
		if st, err := os.Stat(path); err != nil || st.Size() == 0 {
			t.Errorf("profile %s not written (err=%v)", path, err)
		}
	}
	// Finds the crash bug (exact-dedup path).
	o = base
	o.proto, o.fifo, o.msgs, o.depth, o.inTransit = "abp", true, 1, 20, 2
	o.crashes = []ioa.Dir{ioa.RT}
	o.exactDedup = true
	if err := run(o); err != nil {
		t.Errorf("abp crash search: %v", err)
	}
	// Unknown protocol errors.
	o = base
	o.proto, o.fifo, o.msgs, o.depth, o.inTransit, o.maxStates = "nope", true, 1, 5, 1, 100
	if err := run(o); err == nil {
		t.Error("expected error for unknown protocol")
	}
}
