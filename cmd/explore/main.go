// Command explore runs the bounded explicit-state model checker against a
// data link protocol: it enumerates every reachable state of the composed
// system under a pool of environment inputs (wakes, messages, optional
// crashes) and all scheduling nondeterminism, checking the safety fragment
// of the data link specification (no duplicate, spurious, or — optionally
// — reordered delivery) on every path.
//
// Where crashhunt and headerhunt *construct* the paper's counterexamples
// from the impossibility proofs, explore *searches* for them and returns
// a shortest one; for the positive configurations it produces a bounded
// verification certificate instead.
//
// Examples:
//
//	explore -protocol gbn -n 2 -w 1 -fifo=false -msgs 3     # finds the Thm 8.5 bug
//	explore -protocol abp -crash r -msgs 1                  # finds the Thm 7.5 bug
//	explore -protocol stenning -fifo=false -msgs 3          # verifies (bounded)
//	explore -protocol nv -crash t -crash r                  # verifies (bounded)
//	explore -protocol gbn -workers 8 -cpuprofile cpu.pprof  # parallel + profile
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/ioa"
	"repro/internal/protocol"
)

type crashFlags []ioa.Dir

func (c *crashFlags) String() string { return fmt.Sprint([]ioa.Dir(*c)) }

func (c *crashFlags) Set(v string) error {
	switch v {
	case "t":
		*c = append(*c, ioa.TR)
	case "r":
		*c = append(*c, ioa.RT)
	default:
		return fmt.Errorf("crash station must be t or r, got %q", v)
	}
	return nil
}

// options collects the search parameters of one invocation.
type options struct {
	proto      string
	n, w       int
	fifo       bool
	msgs       int
	depth      int
	inTransit  int
	maxStates  int
	checkFIFO  bool
	crashes    []ioa.Dir
	workers    int
	exactDedup bool
	cpuProfile string
	memProfile string
}

func main() {
	var o options
	var crashes crashFlags
	flag.StringVar(&o.proto, "protocol", "gbn", fmt.Sprintf("protocol: %v", protocol.Names()))
	flag.IntVar(&o.n, "n", 2, "modulus for gbn/sr/frag")
	flag.IntVar(&o.w, "w", 1, "window for gbn/sr; fragment count for frag")
	flag.BoolVar(&o.fifo, "fifo", true, "use FIFO channels Ĉ (false: reordering C̄)")
	flag.IntVar(&o.msgs, "msgs", 3, "messages in the input pool")
	flag.IntVar(&o.depth, "depth", 26, "maximum path length")
	flag.IntVar(&o.inTransit, "intransit", 3, "per-channel in-transit cap (pruning)")
	flag.IntVar(&o.maxStates, "maxstates", explore.DefaultMaxStates, "state budget")
	flag.BoolVar(&o.checkFIFO, "dl6", false, "also check delivery order (DL6)")
	flag.IntVar(&o.workers, "workers", runtime.NumCPU(), "parallel BFS workers per level")
	flag.BoolVar(&o.exactDedup, "exactdedup", false, "dedup on full fingerprints instead of 64-bit hashes")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file")
	flag.Var(&crashes, "crash", "add a crash+recover event for station t or r (repeatable)")
	flag.Parse()
	o.crashes = crashes
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	p, err := protocol.ByName(o.proto, o.n, o.w)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(p, o.fifo)
	if err != nil {
		return err
	}
	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	inputs := []ioa.Action{ioa.Wake(ioa.TR), ioa.Wake(ioa.RT)}
	for i := 0; i < o.msgs; i++ {
		inputs = append(inputs, ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("m%d", i+1))))
	}
	for _, d := range o.crashes {
		inputs = append(inputs, ioa.Crash(d), ioa.Wake(d))
	}
	began := time.Now()
	res, err := explore.BFS(sys, explore.Config{
		Inputs:       inputs,
		Monitor:      explore.NewSafetyMonitor(o.checkFIFO),
		MaxDepth:     o.depth,
		MaxStates:    o.maxStates,
		MaxInTransit: o.inTransit,
		Workers:      o.workers,
		ExactDedup:   o.exactDedup,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(began)
	if o.memProfile != "" {
		f, err := os.Create(o.memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	fmt.Printf("protocol=%s channels=%s pool=%d inputs, depth≤%d, in-transit≤%d, workers=%d\n",
		p.Name, channelKind(o.fifo), len(inputs), o.depth, o.inTransit, o.workers)
	fmt.Printf("explored %d states in %v (%.0f states/sec, deepest path %d, exhausted=%t, seen-set ≈%d bytes)\n",
		res.StatesExplored, elapsed.Round(time.Millisecond),
		float64(res.StatesExplored)/elapsed.Seconds(), res.DepthReached, res.Exhausted, res.SeenSetBytes)
	if res.Violation == nil {
		if res.Exhausted {
			fmt.Println("no safety violation reachable within the bound — bounded verification certificate")
		} else {
			fmt.Println("no violation found, but the state budget was exceeded — not a certificate")
		}
		return nil
	}
	fmt.Printf("VIOLATION %s\nshortest trace (%d steps):\n%s", res.Violation, len(res.Trace), ioa.FormatSchedule(res.Trace))
	return nil
}

func channelKind(fifo bool) string {
	if fifo {
		return "Ĉ(FIFO)"
	}
	return "C̄(reordering)"
}
