// Command explore runs the bounded explicit-state model checker against a
// data link protocol: it enumerates every reachable state of the composed
// system under a pool of environment inputs (wakes, messages, optional
// crashes) and all scheduling nondeterminism, checking the safety fragment
// of the data link specification (no duplicate, spurious, or — optionally
// — reordered delivery) on every path.
//
// Where crashhunt and headerhunt *construct* the paper's counterexamples
// from the impossibility proofs, explore *searches* for them and returns
// a shortest one; for the positive configurations it produces a bounded
// verification certificate instead.
//
// Examples:
//
//	explore -protocol gbn -n 2 -w 1 -fifo=false -msgs 3     # finds the Thm 8.5 bug
//	explore -protocol abp -crash r -msgs 1                  # finds the Thm 7.5 bug
//	explore -protocol stenning -fifo=false -msgs 3          # verifies (bounded)
//	explore -protocol nv -crash t -crash r                  # verifies (bounded)
//	explore -protocol gbn -workers 8 -cpuprofile cpu.pprof  # parallel + profile
//	explore -protocol abp -crash r -trace t.jsonl -metrics m.json
//
// With -trace the search emits a JSONL event stream (see internal/obs and
// cmd/obsreport); with -metrics the final counter/gauge/histogram
// snapshot is written as JSON ("-" for stderr); with -snapshot-every the
// trace additionally carries periodic metrics-snapshot events that
// obsreport renders as a per-interval throughput table. Long runs print
// a throttled progress line on stderr either way.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/ioa"
	"repro/internal/obs"
	"repro/internal/protocol"
)

type crashFlags []ioa.Dir

func (c *crashFlags) String() string { return fmt.Sprint([]ioa.Dir(*c)) }

func (c *crashFlags) Set(v string) error {
	switch v {
	case "t":
		*c = append(*c, ioa.TR)
	case "r":
		*c = append(*c, ioa.RT)
	default:
		return fmt.Errorf("crash station must be t or r, got %q", v)
	}
	return nil
}

// options collects the search parameters of one invocation.
type options struct {
	proto      string
	n, w       int
	fifo       bool
	msgs       int
	depth      int
	inTransit  int
	maxStates  int
	checkFIFO  bool
	crashes    []ioa.Dir
	workers    int
	exactDedup bool
	symmetry   bool
	por        bool
	spillDir   string
	spillAt    int
	arena      bool
	checkRun   string
	cpuProfile string
	memProfile string
	tracePath  string
	metrics    string
	snapEvery  time.Duration
	checkpoint string
	ckptEvery  string
	resume     string
	progress   io.Writer                // nil: stderr (tests substitute a buffer)
	onLevel    func(explore.LevelStats) // nil: none (tests hook mid-search behavior)
}

// errInterrupted marks a search stopped gracefully by SIGINT/SIGTERM:
// the in-flight level finished, the final checkpoint (if configured) and
// all obs/profile artifacts were flushed. main maps it to exit code 3 so
// scripts can tell "stopped, resumable" from success (0) and errors (1).
var errInterrupted = errors.New("interrupted")

// exitInterrupted is the distinct status for graceful interruption.
const exitInterrupted = 3

func main() {
	var o options
	var crashes crashFlags
	flag.StringVar(&o.proto, "protocol", "gbn", fmt.Sprintf("protocol: %v", protocol.Names()))
	flag.IntVar(&o.n, "n", 2, "modulus for gbn/sr/frag")
	flag.IntVar(&o.w, "w", 1, "window for gbn/sr; fragment count for frag")
	flag.BoolVar(&o.fifo, "fifo", true, "use FIFO channels Ĉ (false: reordering C̄)")
	flag.IntVar(&o.msgs, "msgs", 3, "messages in the input pool")
	flag.IntVar(&o.depth, "depth", 26, "maximum path length")
	flag.IntVar(&o.inTransit, "intransit", 3, "per-channel in-transit cap (pruning)")
	flag.IntVar(&o.maxStates, "maxstates", explore.DefaultMaxStates, "state budget")
	flag.BoolVar(&o.checkFIFO, "dl6", false, "also check delivery order (DL6)")
	flag.IntVar(&o.workers, "workers", runtime.NumCPU(), "parallel BFS workers per level")
	flag.BoolVar(&o.exactDedup, "exactdedup", false, "dedup on full fingerprints instead of 64-bit hashes")
	flag.BoolVar(&o.symmetry, "symmetry", false, "symmetry reduction: dedup on canonical payload/packet-ID fingerprints")
	flag.BoolVar(&o.por, "por", false, "partial-order reduction: one canonical order for commuting deliveries/losses")
	flag.StringVar(&o.spillDir, "spill-dir", "", "spill cold seen-set fingerprints to sorted run files in this directory")
	flag.IntVar(&o.spillAt, "spill-threshold", 0, "in-memory front size triggering a spill (0: the built-in default; needs -spill-dir)")
	flag.BoolVar(&o.arena, "arena", false, "flat frontier arena: slab-allocated BFS levels instead of per-state heap nodes")
	flag.StringVar(&o.checkRun, "check-spill-run", "", "strict-decode this spill run file and exit (maintenance: validates a -spill-dir artifact)")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file")
	flag.StringVar(&o.tracePath, "trace", "", "write a JSONL trace of the search to this file")
	flag.StringVar(&o.metrics, "metrics", "", "write the final metrics snapshot JSON to this file (\"-\": stderr)")
	flag.DurationVar(&o.snapEvery, "snapshot-every", 0, "emit metrics-snapshot trace events at this interval (needs -trace)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "write durable search checkpoints to this file (atomic, resumable)")
	flag.StringVar(&o.ckptEvery, "checkpoint-every", "1", "checkpoint cadence: N (levels) or a duration like 30s")
	flag.StringVar(&o.resume, "resume", "", "resume the search from this checkpoint file (other flags must match)")
	flag.Var(&crashes, "crash", "add a crash+recover event for station t or r (repeatable)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "explore: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	o.crashes = crashes
	if err := run(o, os.Stdout); err != nil {
		if errors.Is(err, errInterrupted) {
			os.Exit(exitInterrupted)
		}
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}
}

// parseCheckpointEvery accepts either a level count ("5") or a wall-time
// cadence ("30s", "2m").
func parseCheckpointEvery(s string) (levels int, every time.Duration, err error) {
	if n, err := strconv.Atoi(s); err == nil {
		if n <= 0 {
			return 0, 0, fmt.Errorf("-checkpoint-every: level count must be positive, got %d", n)
		}
		return n, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("-checkpoint-every: want a positive level count or duration, got %q", s)
	}
	return 0, d, nil
}

// startCPUProfile begins CPU profiling into path and returns an
// idempotent stop function that flushes the profile and reports the
// file's close error — so a profile truncated by a failing disk is a
// visible failure, not a silent one. The empty path is a no-op.
func startCPUProfile(path string) (stop func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// writeHeapProfile captures a post-GC heap profile to path; the empty
// path is a no-op. It runs on every path out of the search — violation,
// certificate, or budget exhaustion.
func writeHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics encodes the snapshot as indented JSON to path ("-" for
// stderr).
func writeMetrics(path string, snap obs.Snapshot) error {
	if path == "-" {
		return snap.WriteJSON(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// progressPrinter returns an OnLevel hook that prints a throttled
// (~1 s) progress line, so multi-minute searches are visibly alive
// without short runs producing any output.
func progressPrinter(w io.Writer) func(explore.LevelStats) {
	last := time.Now()
	return func(ls explore.LevelStats) {
		if time.Since(last) < time.Second {
			return
		}
		last = time.Now()
		rate := 0.0
		if secs := ls.Elapsed.Seconds(); secs > 0 {
			rate = float64(ls.States) / secs
		}
		fmt.Fprintf(w, "explore: depth=%d frontier=%d states=%d (%.0f states/sec)\n",
			ls.Depth, ls.Frontier, ls.States, rate)
	}
}

func run(o options, out io.Writer) (err error) {
	if o.checkRun != "" {
		return checkSpillRun(o.checkRun, out)
	}
	p, err := protocol.ByName(o.proto, o.n, o.w)
	if err != nil {
		return err
	}
	if o.spillAt != 0 && o.spillDir == "" {
		return errors.New("-spill-threshold needs -spill-dir")
	}
	if o.spillDir != "" {
		if err := os.MkdirAll(o.spillDir, 0o755); err != nil {
			return fmt.Errorf("-spill-dir: %w", err)
		}
	}
	sys, err := core.NewSystem(p, o.fifo)
	if err != nil {
		return err
	}
	stopCPU, err := startCPUProfile(o.cpuProfile)
	if err != nil {
		return err
	}
	// The deferred stop keeps error-path exits covered; the explicit stop
	// below flushes the profile before the post-search reporting.
	defer func() {
		if cerr := stopCPU(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	var reg *obs.Registry
	if o.metrics != "" || o.snapEvery > 0 {
		reg = obs.NewRegistry()
	}
	var tr *obs.Trace
	if o.tracePath != "" {
		tr, err = obs.OpenTrace(o.tracePath)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := tr.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
	}
	tick := obs.StartTicker(reg, tr, o.snapEvery)
	defer tick.Stop()
	progress := o.progress
	if progress == nil {
		progress = os.Stderr
	}

	var ckOpts explore.CheckpointOptions
	if o.checkpoint != "" {
		if o.ckptEvery == "" {
			o.ckptEvery = "1" // the flag default, for programmatic callers
		}
		levels, every, err := parseCheckpointEvery(o.ckptEvery)
		if err != nil {
			return err
		}
		ckOpts = explore.CheckpointOptions{Path: o.checkpoint, EveryLevels: levels, Every: every}
	}
	var resume *explore.Checkpoint
	if o.resume != "" {
		resume, err = explore.ReadCheckpoint(o.resume)
		if err != nil {
			return fmt.Errorf("-resume: %w", err)
		}
	}

	// SIGINT/SIGTERM request a graceful stop: the search finishes its
	// in-flight level, writes a final checkpoint when -checkpoint is set,
	// and falls out through the normal teardown below, so the obs trace,
	// metrics snapshot and profiles are all flushed, not lost.
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		if _, ok := <-sigc; ok {
			fmt.Fprintln(progress, "explore: signal received — finishing the in-flight level")
			close(stop)
		}
	}()
	defer func() {
		signal.Stop(sigc)
		close(sigc)
	}()

	onLevel := progressPrinter(progress)
	if hook := o.onLevel; hook != nil {
		printer := onLevel
		onLevel = func(ls explore.LevelStats) {
			printer(ls)
			hook(ls)
		}
	}

	inputs := []ioa.Action{ioa.Wake(ioa.TR), ioa.Wake(ioa.RT)}
	for i := 0; i < o.msgs; i++ {
		inputs = append(inputs, ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("m%d", i+1))))
	}
	for _, d := range o.crashes {
		inputs = append(inputs, ioa.Crash(d), ioa.Wake(d))
	}
	began := time.Now()
	res, err := explore.BFS(sys, explore.Config{
		Inputs:         inputs,
		Monitor:        explore.NewSafetyMonitor(o.checkFIFO),
		MaxDepth:       o.depth,
		MaxStates:      o.maxStates,
		MaxInTransit:   o.inTransit,
		Workers:        o.workers,
		ExactDedup:     o.exactDedup,
		SpillDir:       o.spillDir,
		SpillThreshold: o.spillAt,
		Arena:          o.arena,
		Symmetry:       o.symmetry,
		POR:            o.por,
		Metrics:        reg,
		Trace:          tr,
		OnLevel:        onLevel,
		Checkpoint:     ckOpts,
		Resume:         resume,
		Stop:           stop,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(began)
	// Flush the profiles before reporting: the violation early-exit and
	// the certificate path write identical, complete artifacts.
	if err := stopCPU(); err != nil {
		return err
	}
	if err := writeHeapProfile(o.memProfile); err != nil {
		return err
	}
	tick.Stop() // quiesce the snapshot stream before the terminal metrics event
	if reg != nil {
		tr.Emit("metrics", obs.JSON("snapshot", reg.Snapshot()))
		if o.metrics != "" {
			if err := writeMetrics(o.metrics, reg.Snapshot()); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(out, "protocol=%s channels=%s pool=%d inputs, depth≤%d, in-transit≤%d, workers=%d, symmetry=%t, por=%t\n",
		p.Name, channelKind(o.fifo), len(inputs), o.depth, o.inTransit, o.workers, o.symmetry, o.por)
	fmt.Fprintf(out, "explored %d states in %v (%.0f states/sec, deepest path %d, exhausted=%t, seen-set ≈%d bytes)\n",
		res.StatesExplored, elapsed.Round(time.Millisecond),
		float64(res.StatesExplored)/elapsed.Seconds(), res.DepthReached, res.Exhausted, res.SeenSetBytes)
	if sp := res.Spill; sp != nil {
		fmt.Fprintf(out, "spill: %d spills, %d merges, %d sums in %d runs (%d bytes on disk), %d run probes\n",
			sp.Spills, sp.Merges, sp.SpilledSums, sp.Runs, sp.DiskBytes, sp.Probes)
	}
	if res.Interrupted {
		if o.checkpoint != "" {
			fmt.Fprintf(out, "interrupted at a level barrier — checkpoint written to %s (resume with -resume %s)\n",
				o.checkpoint, o.checkpoint)
		} else {
			fmt.Fprintln(out, "interrupted at a level barrier — no -checkpoint configured, partial search discarded")
		}
		return errInterrupted
	}
	if res.Violation == nil {
		switch {
		// "Exhausted" always means exhausted within -depth: DepthLimited
		// says whether the depth bound was the binding constraint.
		case res.Exhausted && res.DepthLimited:
			fmt.Fprintf(out, "no safety violation reachable within depth %d — bounded verification certificate (depth-limited: unexpanded frontier remains beyond the bound)\n", o.depth)
		case res.Exhausted:
			fmt.Fprintln(out, "no safety violation reachable within the bound — bounded verification certificate")
		default:
			fmt.Fprintln(out, "no violation found, but the state budget was exceeded — not a certificate")
		}
		return nil
	}
	fmt.Fprintf(out, "VIOLATION %s\nshortest trace (%d steps):\n%s", res.Violation, len(res.Trace), ioa.FormatSchedule(res.Trace))
	return nil
}

// checkSpillRun strict-decodes one spill run file, so operators can
// validate (or diagnose) -spill-dir artifacts without a search: a clean
// file reports its sum count, a corrupt or truncated one surfaces the
// decoder's ErrSpillFormat diagnosis through the normal error exit.
func checkSpillRun(path string, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sums, err := explore.DecodeSpillRun(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(out, "spill run ok: %d sums\n", len(sums))
	return nil
}

func channelKind(fifo bool) string {
	if fifo {
		return "Ĉ(FIFO)"
	}
	return "C̄(reordering)"
}
