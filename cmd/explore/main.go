// Command explore runs the bounded explicit-state model checker against a
// data link protocol: it enumerates every reachable state of the composed
// system under a pool of environment inputs (wakes, messages, optional
// crashes) and all scheduling nondeterminism, checking the safety fragment
// of the data link specification (no duplicate, spurious, or — optionally
// — reordered delivery) on every path.
//
// Where crashhunt and headerhunt *construct* the paper's counterexamples
// from the impossibility proofs, explore *searches* for them and returns
// a shortest one; for the positive configurations it produces a bounded
// verification certificate instead.
//
// Examples:
//
//	explore -protocol gbn -n 2 -w 1 -fifo=false -msgs 3     # finds the Thm 8.5 bug
//	explore -protocol abp -crash r -msgs 1                  # finds the Thm 7.5 bug
//	explore -protocol stenning -fifo=false -msgs 3          # verifies (bounded)
//	explore -protocol nv -crash t -crash r                  # verifies (bounded)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/ioa"
	"repro/internal/protocol"
)

type crashFlags []ioa.Dir

func (c *crashFlags) String() string { return fmt.Sprint([]ioa.Dir(*c)) }

func (c *crashFlags) Set(v string) error {
	switch v {
	case "t":
		*c = append(*c, ioa.TR)
	case "r":
		*c = append(*c, ioa.RT)
	default:
		return fmt.Errorf("crash station must be t or r, got %q", v)
	}
	return nil
}

func main() {
	var crashes crashFlags
	var (
		proto     = flag.String("protocol", "gbn", fmt.Sprintf("protocol: %v", protocol.Names()))
		n         = flag.Int("n", 2, "modulus for gbn/sr/frag")
		w         = flag.Int("w", 1, "window for gbn/sr; fragment count for frag")
		fifo      = flag.Bool("fifo", true, "use FIFO channels Ĉ (false: reordering C̄)")
		msgs      = flag.Int("msgs", 3, "messages in the input pool")
		depth     = flag.Int("depth", 26, "maximum path length")
		inTransit = flag.Int("intransit", 3, "per-channel in-transit cap (pruning)")
		maxStates = flag.Int("maxstates", explore.DefaultMaxStates, "state budget")
		checkFIFO = flag.Bool("dl6", false, "also check delivery order (DL6)")
	)
	flag.Var(&crashes, "crash", "add a crash+recover event for station t or r (repeatable)")
	flag.Parse()
	if err := run(*proto, *n, *w, *fifo, *msgs, *depth, *inTransit, *maxStates, *checkFIFO, crashes); err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}
}

func run(proto string, n, w int, fifo bool, msgs, depth, inTransit, maxStates int, checkFIFO bool, crashes []ioa.Dir) error {
	p, err := protocol.ByName(proto, n, w)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(p, fifo)
	if err != nil {
		return err
	}
	inputs := []ioa.Action{ioa.Wake(ioa.TR), ioa.Wake(ioa.RT)}
	for i := 0; i < msgs; i++ {
		inputs = append(inputs, ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("m%d", i+1))))
	}
	for _, d := range crashes {
		inputs = append(inputs, ioa.Crash(d), ioa.Wake(d))
	}
	res, err := explore.BFS(sys, explore.Config{
		Inputs:       inputs,
		Monitor:      explore.NewSafetyMonitor(checkFIFO),
		MaxDepth:     depth,
		MaxStates:    maxStates,
		MaxInTransit: inTransit,
	})
	if err != nil {
		return err
	}
	fmt.Printf("protocol=%s channels=%s pool=%d inputs, depth≤%d, in-transit≤%d\n",
		p.Name, channelKind(fifo), len(inputs), depth, inTransit)
	fmt.Printf("explored %d states (deepest path %d, exhausted=%t)\n",
		res.StatesExplored, res.DepthReached, res.Exhausted)
	if res.Violation == nil {
		if res.Exhausted {
			fmt.Println("no safety violation reachable within the bound — bounded verification certificate")
		} else {
			fmt.Println("no violation found, but the state budget was exceeded — not a certificate")
		}
		return nil
	}
	fmt.Printf("VIOLATION %s\nshortest trace (%d steps):\n%s", res.Violation, len(res.Trace), ioa.FormatSchedule(res.Trace))
	return nil
}

func channelKind(fifo bool) string {
	if fifo {
		return "Ĉ(FIFO)"
	}
	return "C̄(reordering)"
}
