// Command crashhunt runs the Theorem 7.5 adversary (the crash pump)
// against a data link protocol over the permissive FIFO channels Ĉ: if the
// protocol is message-independent and crashing, the pump mechanically
// constructs an execution whose behavior violates the weak data link
// specification WDL; if the protocol keeps non-volatile state across
// crashes, the hypothesis check rejects it — the two sides of the paper's
// Section 7.
//
// Examples:
//
//	crashhunt -protocol abp -trace
//	crashhunt -protocol gbn -n 16 -w 4
//	crashhunt -protocol nv          # rejected: not crashing
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/adversary"
	"repro/internal/ioa"
	"repro/internal/msc"
	"repro/internal/protocol"
)

func main() {
	var (
		proto = flag.String("protocol", "abp", fmt.Sprintf("protocol: %v", protocol.Names()))
		n     = flag.Int("n", 8, "Go-Back-N modulus")
		w     = flag.Int("w", 3, "Go-Back-N window")
		trace = flag.Bool("trace", false, "print the violating data link behavior")
		chart = flag.Bool("msc", false, "print the full violating execution as a message sequence chart")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "crashhunt: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*proto, *n, *w, *trace, *chart); err != nil {
		fmt.Fprintln(os.Stderr, "crashhunt:", err)
		os.Exit(1)
	}
}

func run(proto string, n, w int, trace, chart bool) error {
	p, err := protocol.ByName(proto, n, w)
	if err != nil {
		return err
	}
	rep, err := adversary.CrashPump(p, adversary.CrashPumpConfig{})
	if errors.Is(err, adversary.ErrHypothesisRejected) {
		fmt.Printf("protocol %s escapes Theorem 7.5 — hypothesis check failed:\n  %v\n", p.Name, err)
		fmt.Println("(a protocol with non-volatile memory is outside the theorem; see the paper's discussion of [BS83])")
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Print(rep)
	if trace {
		fmt.Println("violating data link behavior:")
		fmt.Print(ioa.FormatSchedule(rep.Behavior))
	}
	if chart {
		fmt.Println("message sequence chart of the violating execution:")
		fmt.Print(msc.Render(rep.Schedule, msc.Options{}))
	}
	if rep.Verdict.OK() {
		return fmt.Errorf("pump failed to produce a WDL violation — this refutes the reproduction, not the theorem")
	}
	return nil
}
