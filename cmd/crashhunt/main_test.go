package main

import "testing"

func TestRunAgainstProtocols(t *testing.T) {
	tests := []struct {
		name  string
		proto string
		n, w  int
		ok    bool
	}{
		{"abp-defeated", "abp", 0, 0, true},
		{"gbn-defeated", "gbn", 4, 2, true},
		{"sr-defeated", "sr", 4, 2, true},
		{"hs-defeated", "hs", 0, 0, true},
		{"nv-rejected", "nv", 0, 0, true}, // hypothesis rejection is a clean outcome
		{"unknown", "nope", 0, 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(tt.proto, tt.n, tt.w, false, true)
			if (err == nil) != tt.ok {
				t.Errorf("run() err = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}
