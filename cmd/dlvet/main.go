// Command dlvet is the repository's domain-specific static analyzer. It
// loads the module's packages once (one `go list -export` pass whose
// export data feeds a cross-package fact store) and runs eight
// analyzers that enforce the paper's structural constraints
// (message-independence, the crashing property) and the engines'
// soundness invariants (fingerprint completeness, engine determinism,
// zero-cost disabled observability, Snapshot/Restore coverage,
// exact/canonical fingerprint parity, strict wire decoding). When the
// full analyzer set runs, a stale-suppression audit additionally flags
// every lint:ignore/fp:ignore/snap:ignore/canon:ignore annotation that
// no longer suppresses a live diagnostic.
//
// Usage:
//
//	dlvet [-json] [-sarif file] [-audit=false] [-analyzers list] [-dir path] [packages...]
//
// With no package arguments, ./... is analyzed. The logical exit code
// is 0 when clean, 1 on a load/internal error, 2 on a usage error, and
// otherwise the OR of the failing analyzers' bits (fingerprint=4,
// determinism=8, msgindep=16, obsdiscipline=32, crashreset=64,
// snapshotcoverage=128, canonparity=256, strictdecode=512, stale
// suppressions=1024), so CI logs show which invariant class broke. Bits
// above 255 do not fit a POSIX status byte: the process exits with
// lint.ProcessStatus(code), which forces bit 128 on for any
// overflowing code (never reading as success), prints the full code to
// stderr when the two differ, and always reports it in -json output as
// "exit_code".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("dlvet", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON diagnostics (schema: {diagnostics: [{analyzer, file, line, column, message}], count, exit_code})")
	sarifOut := fs.String("sarif", "", "also write a SARIF 2.1.0 log to this file")
	audit := fs.Bool("audit", true, "audit suppression annotations for staleness (full analyzer set only)")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all; subsetting disables the suppression audit)")
	dir := fs.String("dir", ".", "directory inside the module to load packages from")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dlvet [-json] [-sarif file] [-audit=false] [-analyzers list] [-dir path] [packages...]\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-16s %s (exit bit %d)\n", a.Name, a.Doc, a.Bit)
		}
		fmt.Fprintf(os.Stderr, "  %-16s %s (exit bit %d; runs with the full set unless -audit=false)\n",
			lint.AuditName, "suppression annotations must suppress a live diagnostic and carry a reason", lint.AuditBit)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	subset := false
	if *names != "" {
		var err error
		analyzers, err = lint.ByName(*names)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dlvet: %v\n", err)
			fmt.Fprintf(os.Stderr, "known analyzers: %s\n", analyzerNames())
			return 2
		}
		subset = len(analyzers) < len(lint.All())
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := lint.ModuleRoot(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlvet: %v\n", err)
		return 1
	}
	pkgs, err := lint.LoadPackages(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlvet: %v\n", err)
		return 1
	}

	diags := lint.Run(pkgs, analyzers)
	if *audit && !subset {
		// The audit is only meaningful after the full set ran: under a
		// subset, annotations for the analyzers that did not run would be
		// indistinguishable from stale ones.
		diags = append(diags, lint.AuditSuppressions(pkgs)...)
	}
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, root, diags); err != nil {
			fmt.Fprintf(os.Stderr, "dlvet: %v\n", err)
			return 1
		}
	} else {
		lint.WriteText(os.Stdout, root, diags)
	}
	if *sarifOut != "" {
		f, err := os.Create(*sarifOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dlvet: %v\n", err)
			return 1
		}
		if err := lint.WriteSARIF(f, root, diags); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "dlvet: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dlvet: %v\n", err)
			return 1
		}
	}

	code := lint.ExitCode(diags)
	status := lint.ProcessStatus(code)
	if status != code {
		fmt.Fprintf(os.Stderr, "dlvet: logical exit code %d (process status %d; bits above 255 fold onto 128)\n", code, status)
	}
	return status
}

func analyzerNames() string {
	var names []string
	for _, a := range lint.All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}
