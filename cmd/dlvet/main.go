// Command dlvet is the repository's domain-specific static analyzer. It
// loads the module's packages and runs five analyzers that enforce the
// paper's structural constraints (message-independence, the crashing
// property) and the checker's soundness invariants (fingerprint
// completeness, engine determinism, zero-cost disabled observability).
//
// Usage:
//
//	dlvet [-json] [-analyzers list] [-dir path] [packages...]
//
// With no package arguments, ./... is analyzed. The exit status is 0
// when clean, 1 on a load/internal error, 2 on a usage error, and
// otherwise the OR of the failing analyzers' bits (fingerprint=4,
// determinism=8, msgindep=16, obsdiscipline=32, crashreset=64), so CI
// logs show which invariant class broke from the status alone.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("dlvet", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON diagnostics")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	dir := fs.String("dir", ".", "directory inside the module to load packages from")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dlvet [-json] [-analyzers list] [-dir path] [packages...]\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s (exit bit %d)\n", a.Name, a.Doc, a.Bit)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *names != "" {
		var err error
		analyzers, err = lint.ByName(*names)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dlvet: %v\n", err)
			fmt.Fprintf(os.Stderr, "known analyzers: %s\n", analyzerNames())
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := lint.ModuleRoot(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlvet: %v\n", err)
		return 1
	}
	pkgs, err := lint.LoadPackages(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlvet: %v\n", err)
		return 1
	}

	diags := lint.Run(pkgs, analyzers)
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, root, diags); err != nil {
			fmt.Fprintf(os.Stderr, "dlvet: %v\n", err)
			return 1
		}
	} else {
		lint.WriteText(os.Stdout, root, diags)
	}
	return lint.ExitCode(diags)
}

func analyzerNames() string {
	var names []string
	for _, a := range lint.All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}
