package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/transport"
)

func TestLoopbackCleanRun(t *testing.T) {
	var out strings.Builder
	err := run(&out, options{mode: "loopback", proto: "gbn", n: 8, w: 3, fifo: true,
		msgs: 500, window: 8, faults: "none", seed: 1})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, want := range []string{"delivered 500/500", "verdict: DL^{t,r}: OK", "decode errors"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestLoopbackFaultyRunStaysClean(t *testing.T) {
	var out strings.Builder
	err := run(&out, options{mode: "loopback", proto: "gbn", n: 8, w: 3, fifo: true,
		msgs: 200, window: 8, faults: "loss,corrupt", rate: 0.2, seed: 3})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "faults=loss,corrupt") {
		t.Errorf("output missing fault plan:\n%s", out.String())
	}
}

// TestViolationExitPath: traffic beyond the protocol's envelope must
// surface as errViolation — the distinct exit-code path.
func TestViolationExitPath(t *testing.T) {
	var out strings.Builder
	err := run(&out, options{mode: "loopback", proto: "gbn", n: 2, w: 1, fifo: false,
		msgs: 30, window: 6, faults: "reorder,loss", rate: 0.3, seed: 1})
	if !errors.Is(err, errViolation) {
		t.Fatalf("want errViolation, got %v\n%s", err, out.String())
	}
}

func TestTCPMode(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		errc <- transport.Serve(ln, transport.ServerConfig{Resolve: protocol.ByName, MaxSessions: 1})
	}()
	var out strings.Builder
	if err := run(&out, options{mode: "tcp", proto: "abp", fifo: true, msgs: 50,
		window: 4, faults: "none", addr: ln.Addr().String(), timeout: 20 * time.Second, metrics: true}); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "delivered 50/50") {
		t.Errorf("output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "transport.msgs_delivered") {
		t.Errorf("metrics snapshot missing:\n%s", out.String())
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestBadUsage(t *testing.T) {
	var out strings.Builder
	if err := run(&out, options{mode: "loopback", proto: "nope", msgs: 1}); err == nil {
		t.Error("unknown protocol accepted")
	}
	if err := run(&out, options{mode: "warp", proto: "abp", msgs: 1}); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run(&out, options{mode: "tcp", proto: "abp", msgs: 1, faults: "loss"}); err == nil {
		t.Error("tcp mode accepted faults")
	}
	if err := run(&out, options{mode: "loopback", proto: "abp", msgs: 1, faults: "jitter"}); err == nil {
		t.Error("unknown fault accepted")
	}
}

// TestLatencyLine: every run with spans prints the delivery-latency
// quantile line in the goodput report.
func TestLatencyLine(t *testing.T) {
	var out strings.Builder
	err := run(&out, options{mode: "loopback", proto: "abp", fifo: true,
		msgs: 100, window: 4, faults: "none", seed: 1})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "latency: p50=") ||
		!strings.Contains(out.String(), "p95=") || !strings.Contains(out.String(), "p99=") {
		t.Errorf("latency quantile line missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "(100 spans)") {
		t.Errorf("span count missing:\n%s", out.String())
	}
}

// TestBenchAppend: -json appends array entries across runs, with the
// goodput and latency fields filled in.
func TestBenchAppend(t *testing.T) {
	bench := filepath.Join(t.TempDir(), "BENCH_serve.json")
	for i := 0; i < 2; i++ {
		var out strings.Builder
		err := run(&out, options{mode: "loopback", proto: "gbn", n: 8, w: 3, fifo: true,
			msgs: 200, window: 8, faults: "none", seed: 1, bench: bench, label: "test"})
		if err != nil {
			t.Fatalf("run %d: %v\n%s", i, err, out.String())
		}
		if !strings.Contains(out.String(), "appended entry to") {
			t.Errorf("run %d output missing append notice:\n%s", i, out.String())
		}
	}
	blob, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	var entries []benchEntry
	if err := json.Unmarshal(blob, &entries); err != nil {
		t.Fatalf("bench file does not parse: %v\n%s", err, blob)
	}
	if len(entries) != 2 {
		t.Fatalf("bench file has %d entries, want 2", len(entries))
	}
	for i, e := range entries {
		if e.Experiment != "serve" || e.Label != "test" || e.Mode != "loopback" ||
			e.Delivered != 200 || e.GoodputMsgS <= 0 || e.DurationMS <= 0 {
			t.Errorf("entry %d = %+v", i, e)
		}
		if e.LatencyP50US < 0 || e.LatencyP99US < e.LatencyP50US {
			t.Errorf("entry %d latency quantiles inconsistent: %+v", i, e)
		}
	}
}

// TestTCPTraceMode: -trace in tcp mode writes a validating client-side
// session trace suitable for obsreport -merge.
func TestTCPTraceMode(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		errc <- transport.Serve(ln, transport.ServerConfig{Resolve: protocol.ByName, MaxSessions: 1})
	}()
	tracePath := filepath.Join(t.TempDir(), "client.jsonl")
	var out strings.Builder
	if err := run(&out, options{mode: "tcp", proto: "gbn", n: 8, w: 3, fifo: true, msgs: 30,
		window: 4, faults: "none", addr: ln.Addr().String(), timeout: 20 * time.Second,
		tracePath: tracePath, snapshotEvery: time.Millisecond}); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var v obs.Validator
	events := map[string]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		ev, err := v.Line(sc.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		events[ev]++
	}
	for _, want := range []string{"transport.session", "transport.event", "transport.seal", "metrics"} {
		if events[want] == 0 {
			t.Errorf("client trace has no %q events: %v", want, events)
		}
	}
}
