package main

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/protocol"
	"repro/internal/transport"
)

func TestLoopbackCleanRun(t *testing.T) {
	var out strings.Builder
	err := run(&out, options{mode: "loopback", proto: "gbn", n: 8, w: 3, fifo: true,
		msgs: 500, window: 8, faults: "none", seed: 1})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, want := range []string{"delivered 500/500", "verdict: DL^{t,r}: OK", "decode errors"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestLoopbackFaultyRunStaysClean(t *testing.T) {
	var out strings.Builder
	err := run(&out, options{mode: "loopback", proto: "gbn", n: 8, w: 3, fifo: true,
		msgs: 200, window: 8, faults: "loss,corrupt", rate: 0.2, seed: 3})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "faults=loss,corrupt") {
		t.Errorf("output missing fault plan:\n%s", out.String())
	}
}

// TestViolationExitPath: traffic beyond the protocol's envelope must
// surface as errViolation — the distinct exit-code path.
func TestViolationExitPath(t *testing.T) {
	var out strings.Builder
	err := run(&out, options{mode: "loopback", proto: "gbn", n: 2, w: 1, fifo: false,
		msgs: 30, window: 6, faults: "reorder,loss", rate: 0.3, seed: 1})
	if !errors.Is(err, errViolation) {
		t.Fatalf("want errViolation, got %v\n%s", err, out.String())
	}
}

func TestTCPMode(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		errc <- transport.Serve(ln, transport.ServerConfig{Resolve: protocol.ByName, MaxSessions: 1})
	}()
	var out strings.Builder
	if err := run(&out, options{mode: "tcp", proto: "abp", fifo: true, msgs: 50,
		window: 4, faults: "none", addr: ln.Addr().String(), timeout: 20 * time.Second, metrics: true}); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "delivered 50/50") {
		t.Errorf("output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "transport.msgs_delivered") {
		t.Errorf("metrics snapshot missing:\n%s", out.String())
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestBadUsage(t *testing.T) {
	var out strings.Builder
	if err := run(&out, options{mode: "loopback", proto: "nope", msgs: 1}); err == nil {
		t.Error("unknown protocol accepted")
	}
	if err := run(&out, options{mode: "warp", proto: "abp", msgs: 1}); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run(&out, options{mode: "tcp", proto: "abp", msgs: 1, faults: "loss"}); err == nil {
		t.Error("tcp mode accepted faults")
	}
	if err := run(&out, options{mode: "loopback", proto: "abp", msgs: 1, faults: "jitter"}); err == nil {
		t.Error("unknown fault accepted")
	}
}
