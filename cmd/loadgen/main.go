// Command loadgen pushes a message workload through a live transport
// backend — the in-process loopback link or a TCP session against
// dlserve — with the online DL/PL conformance monitors attached, and
// prints goodput plus the verdict summary.
//
// Exit codes: 0 clean, 1 harness error, 2 usage, 4 monitor violation.
//
// Examples:
//
//	loadgen -mode loopback -protocol gbn -msgs 100000
//	loadgen -mode loopback -protocol gbn -n 2 -w 1 -faults reorder,loss -fifo=false
//	loadgen -mode tcp -addr 127.0.0.1:4444 -protocol abp -msgs 1000
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// errViolation marks a run whose monitors flagged a specification
// violation — a finding, reported with its own exit code, distinct
// from harness failures.
var errViolation = errors.New("monitor violation")

func main() {
	var (
		mode    = flag.String("mode", "loopback", "backend: loopback or tcp")
		proto   = flag.String("protocol", "gbn", fmt.Sprintf("protocol: %v", protocol.Names()))
		n       = flag.Int("n", 8, "sequence modulus (gbn/sr/frag)")
		w       = flag.Int("w", 3, "window / fragment count (gbn/sr/frag)")
		fifo    = flag.Bool("fifo", true, "claim the FIFO link discipline (judges PL-FIFO)")
		msgs    = flag.Int("msgs", 1000, "messages to push")
		window  = flag.Int("window", 8, "application in-flight window")
		faults  = flag.String("faults", "none", "loopback middlebox faults: none, all, or comma list of loss,dup,reorder,corrupt")
		rate    = flag.Float64("rate", 0.2, "per-frame probability of each enabled fault")
		seed    = flag.Int64("seed", 1, "fault/reorder seed (loopback runs are deterministic per seed)")
		addr    = flag.String("addr", "127.0.0.1:4444", "dlserve address (tcp mode)")
		timeout = flag.Duration("timeout", 60*time.Second, "session deadline (tcp mode)")
		metrics = flag.Bool("metrics", false, "print an obs snapshot as JSON")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	err := run(os.Stdout, options{
		mode: *mode, proto: *proto, n: *n, w: *w, fifo: *fifo,
		msgs: *msgs, window: *window, faults: *faults, rate: *rate,
		seed: *seed, addr: *addr, timeout: *timeout, metrics: *metrics,
	})
	switch {
	case err == nil:
	case errors.Is(err, errViolation):
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(4)
	default:
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type options struct {
	mode, proto  string
	n, w         int
	fifo         bool
	msgs, window int
	faults       string
	rate         float64
	seed         int64
	addr         string
	timeout      time.Duration
	metrics      bool
}

func run(out io.Writer, o options) error {
	p, err := protocol.ByName(o.proto, o.n, o.w)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	start := time.Now()

	var verdicts transport.VerdictSet
	var violations int
	switch o.mode {
	case "loopback":
		plan, err := transport.ParseFaultPlan(o.faults)
		if err != nil {
			return err
		}
		plan.Rate = o.rate
		res, runErr := transport.RunLoopback(transport.LoopbackConfig{
			Protocol: p,
			FIFO:     o.fifo,
			Msgs:     o.msgs,
			Window:   o.window,
			Faults:   plan,
			Seed:     o.seed,
			Registry: reg,
		})
		if res != nil {
			verdicts, violations = res.Verdicts, len(res.Violations)
			fmt.Fprintf(out, "loopback %s: faults=%s rate=%.2f seed=%d\n", p.Name, plan, o.rate, o.seed)
			report(out, reg, start, o.msgs)
		}
		if runErr != nil {
			return runErr
		}
	case "tcp":
		if o.faults != "" && o.faults != "none" {
			return fmt.Errorf("fault injection is loopback-only; the TCP path is a real link")
		}
		res, runErr := transport.Dial(o.addr, transport.ClientConfig{
			Protocol:  p,
			ProtoName: o.proto,
			N:         o.n,
			W:         o.w,
			FIFO:      o.fifo,
			Msgs:      o.msgs,
			Window:    o.window,
			Timeout:   o.timeout,
			Registry:  reg,
		})
		if res != nil {
			verdicts, violations = res.Verdicts, len(res.Violations)
			fmt.Fprintf(out, "tcp %s: server=%s\n", p.Name, o.addr)
			report(out, reg, start, o.msgs)
		}
		if runErr != nil {
			return runErr
		}
	default:
		return fmt.Errorf("unknown mode %q (want loopback or tcp)", o.mode)
	}

	fmt.Fprintf(out, "verdict: %s\n", verdicts)
	if o.metrics {
		if err := reg.Snapshot().WriteJSON(out); err != nil {
			return err
		}
	}
	if !verdicts.Clean() {
		return fmt.Errorf("%w: %d signalled online; %s", errViolation, violations, verdicts)
	}
	return nil
}

// report prints the goodput line from the obs counters — the metrics
// are the source of truth, not the in-process result struct.
func report(out io.Writer, reg *obs.Registry, start time.Time, want int) {
	elapsed := time.Since(start)
	snap := reg.Snapshot()
	delivered := snap.Counter("transport.msgs_delivered")
	goodput := float64(delivered) / elapsed.Seconds()
	fmt.Fprintf(out, "delivered %d/%d messages in %v (%.0f msg/s)\n", delivered, want, elapsed.Round(time.Millisecond), goodput)
	fmt.Fprintf(out, "frames: %d sent (%d bytes), %d received, %d decode errors, %d faults injected\n",
		snap.Counter("transport.frames_sent"), snap.Counter("transport.frame_bytes_sent"),
		snap.Counter("transport.frames_received"), snap.Counter("transport.decode_errors"),
		snap.Counter("transport.faults_injected"))
}
