// Command loadgen pushes a message workload through a live transport
// backend — the in-process loopback link or a TCP session against
// dlserve — with the online DL/PL conformance monitors attached, and
// prints goodput, delivery-latency quantiles and the verdict summary.
//
// Exit codes: 0 clean, 1 harness error, 2 usage, 4 monitor violation.
//
// Examples:
//
//	loadgen -mode loopback -protocol gbn -msgs 100000
//	loadgen -mode loopback -protocol gbn -n 2 -w 1 -faults reorder,loss -fifo=false
//	loadgen -mode tcp -addr 127.0.0.1:4444 -protocol abp -msgs 1000
//	loadgen -mode loopback -protocol gbn -msgs 100000 -json BENCH_serve.json
//	loadgen -mode tcp -addr 127.0.0.1:4444 -trace client.jsonl -snapshot-every 1s
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// errViolation marks a run whose monitors flagged a specification
// violation — a finding, reported with its own exit code, distinct
// from harness failures.
var errViolation = errors.New("monitor violation")

func main() {
	var (
		mode    = flag.String("mode", "loopback", "backend: loopback or tcp")
		proto   = flag.String("protocol", "gbn", fmt.Sprintf("protocol: %v", protocol.Names()))
		n       = flag.Int("n", 8, "sequence modulus (gbn/sr/frag)")
		w       = flag.Int("w", 3, "window / fragment count (gbn/sr/frag)")
		fifo    = flag.Bool("fifo", true, "claim the FIFO link discipline (judges PL-FIFO)")
		msgs    = flag.Int("msgs", 1000, "messages to push")
		window  = flag.Int("window", 8, "application in-flight window")
		faults  = flag.String("faults", "none", "loopback middlebox faults: none, all, or comma list of loss,dup,reorder,corrupt")
		rate    = flag.Float64("rate", 0.2, "per-frame probability of each enabled fault")
		seed    = flag.Int64("seed", 1, "fault/reorder seed (loopback runs are deterministic per seed)")
		addr    = flag.String("addr", "127.0.0.1:4444", "dlserve address (tcp mode)")
		timeout = flag.Duration("timeout", 60*time.Second, "session deadline (tcp mode)")
		metrics = flag.Bool("metrics", false, "print an obs snapshot as JSON")
		bench   = flag.String("json", "", "append a goodput+latency benchmark entry to this JSON file")
		label   = flag.String("label", "", "label for the benchmark entry (-json)")
		trace   = flag.String("trace", "", "write a JSONL trace (session events in tcp mode) to this file")
		every   = flag.Duration("snapshot-every", 0, "emit metrics-snapshot trace events at this interval (needs -trace)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	err := run(os.Stdout, options{
		mode: *mode, proto: *proto, n: *n, w: *w, fifo: *fifo,
		msgs: *msgs, window: *window, faults: *faults, rate: *rate,
		seed: *seed, addr: *addr, timeout: *timeout, metrics: *metrics,
		bench: *bench, label: *label, tracePath: *trace, snapshotEvery: *every,
	})
	switch {
	case err == nil:
	case errors.Is(err, errViolation):
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(4)
	default:
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type options struct {
	mode, proto   string
	n, w          int
	fifo          bool
	msgs, window  int
	faults        string
	rate          float64
	seed          int64
	addr          string
	timeout       time.Duration
	metrics       bool
	bench, label  string
	tracePath     string
	snapshotEvery time.Duration
}

// benchEntry is one BENCH_serve.json record: the serving-path goodput
// trajectory, same append-style array convention as BENCH_explore.json.
type benchEntry struct {
	Experiment   string  `json:"experiment"`
	Label        string  `json:"label,omitempty"`
	Mode         string  `json:"mode"`
	Protocol     string  `json:"protocol"`
	N            int     `json:"n"`
	W            int     `json:"w"`
	FIFO         bool    `json:"fifo"`
	Faults       string  `json:"faults"`
	Rate         float64 `json:"rate"`
	Seed         int64   `json:"seed"`
	Msgs         int     `json:"msgs"`
	Window       int     `json:"window"`
	Cores        int     `json:"cores"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	Delivered    int64   `json:"delivered"`
	DurationMS   float64 `json:"duration_ms"`
	GoodputMsgS  float64 `json:"goodput_msg_per_s"`
	FramesSent   int64   `json:"frames_sent"`
	FrameBytes   int64   `json:"frame_bytes_sent"`
	LatencyP50US int64   `json:"latency_p50_us"`
	LatencyP95US int64   `json:"latency_p95_us"`
	LatencyP99US int64   `json:"latency_p99_us"`
	RetransMean  float64 `json:"retransmits_per_msg_mean"`
}

func run(out io.Writer, o options) (err error) {
	p, err := protocol.ByName(o.proto, o.n, o.w)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	var tr *obs.Trace
	if o.tracePath != "" {
		tr, err = obs.OpenTrace(o.tracePath)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := tr.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
	}
	tick := obs.StartTicker(reg, tr, o.snapshotEvery)
	defer tick.Stop()
	start := time.Now()

	var verdicts transport.VerdictSet
	var violations int
	switch o.mode {
	case "loopback":
		plan, err := transport.ParseFaultPlan(o.faults)
		if err != nil {
			return err
		}
		plan.Rate = o.rate
		res, runErr := transport.RunLoopback(transport.LoopbackConfig{
			Protocol: p,
			FIFO:     o.fifo,
			Msgs:     o.msgs,
			Window:   o.window,
			Faults:   plan,
			Seed:     o.seed,
			Registry: reg,
		})
		if res != nil {
			verdicts, violations = res.Verdicts, len(res.Violations)
			fmt.Fprintf(out, "loopback %s: faults=%s rate=%.2f seed=%d\n", p.Name, plan, o.rate, o.seed)
			report(out, reg, start, o.msgs)
		}
		if runErr != nil {
			return runErr
		}
	case "tcp":
		if o.faults != "" && o.faults != "none" {
			return fmt.Errorf("fault injection is loopback-only; the TCP path is a real link")
		}
		res, runErr := transport.Dial(o.addr, transport.ClientConfig{
			Protocol:  p,
			ProtoName: o.proto,
			N:         o.n,
			W:         o.w,
			FIFO:      o.fifo,
			Msgs:      o.msgs,
			Window:    o.window,
			Timeout:   o.timeout,
			Registry:  reg,
			Trace:     tr,
			Session:   1,
		})
		if res != nil {
			verdicts, violations = res.Verdicts, len(res.Violations)
			fmt.Fprintf(out, "tcp %s: server=%s\n", p.Name, o.addr)
			report(out, reg, start, o.msgs)
		}
		if runErr != nil {
			return runErr
		}
	default:
		return fmt.Errorf("unknown mode %q (want loopback or tcp)", o.mode)
	}
	elapsed := time.Since(start)
	tick.Stop()
	if tr != nil {
		tr.Emit("metrics", obs.JSON("snapshot", reg.Snapshot()))
	}

	fmt.Fprintf(out, "verdict: %s\n", verdicts)
	if o.metrics {
		if err := reg.Snapshot().WriteJSON(out); err != nil {
			return err
		}
	}
	if o.bench != "" {
		if err := appendBenchEntry(o.bench, benchEntry{
			Experiment: "serve", Label: o.label, Mode: o.mode,
			Protocol: o.proto, N: o.n, W: o.w, FIFO: o.fifo,
			Faults: o.faults, Rate: o.rate, Seed: o.seed,
			Msgs: o.msgs, Window: o.window,
			Cores: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
		}, reg.Snapshot(), elapsed); err != nil {
			return err
		}
		fmt.Fprintf(out, "appended entry to %s\n", o.bench)
	}
	if !verdicts.Clean() {
		return fmt.Errorf("%w: %d signalled online; %s", errViolation, violations, verdicts)
	}
	return nil
}

// report prints the goodput and latency lines from the obs counters —
// the metrics are the source of truth, not the in-process result
// struct.
func report(out io.Writer, reg *obs.Registry, start time.Time, want int) {
	elapsed := time.Since(start)
	snap := reg.Snapshot()
	delivered := snap.Counter("transport.msgs_delivered")
	goodput := float64(delivered) / elapsed.Seconds()
	fmt.Fprintf(out, "delivered %d/%d messages in %v (%.0f msg/s)\n", delivered, want, elapsed.Round(time.Millisecond), goodput)
	if lat, ok := snap.Histogram("transport.delivery_latency"); ok && lat.Count > 0 {
		line := fmt.Sprintf("latency: p50=%dµs p95=%dµs p99=%dµs (%d spans)", lat.P50, lat.P95, lat.P99, lat.Count)
		if rtx, ok := snap.Histogram("transport.retransmits_per_msg"); ok && rtx.Count > 0 {
			line += fmt.Sprintf(", %.2f retransmits/msg", rtx.Mean)
		}
		fmt.Fprintln(out, line)
	}
	fmt.Fprintf(out, "frames: %d sent (%d bytes), %d received, %d decode errors, %d faults injected\n",
		snap.Counter("transport.frames_sent"), snap.Counter("transport.frame_bytes_sent"),
		snap.Counter("transport.frames_received"), snap.Counter("transport.decode_errors"),
		snap.Counter("transport.faults_injected"))
}

// appendBenchEntry fills entry's measured fields from the snapshot and
// appends it to path, a JSON array of entries (a legacy single-object
// file is wrapped into a one-entry array, so history is never lost).
func appendBenchEntry(path string, entry benchEntry, snap obs.Snapshot, elapsed time.Duration) error {
	entry.Delivered = snap.Counter("transport.msgs_delivered")
	entry.DurationMS = float64(elapsed.Microseconds()) / 1000
	if secs := elapsed.Seconds(); secs > 0 {
		entry.GoodputMsgS = float64(entry.Delivered) / secs
	}
	entry.FramesSent = snap.Counter("transport.frames_sent")
	entry.FrameBytes = snap.Counter("transport.frame_bytes_sent")
	if lat, ok := snap.Histogram("transport.delivery_latency"); ok {
		entry.LatencyP50US, entry.LatencyP95US, entry.LatencyP99US = lat.P50, lat.P95, lat.P99
	}
	if rtx, ok := snap.Histogram("transport.retransmits_per_msg"); ok {
		entry.RetransMean = rtx.Mean
	}

	var entries []json.RawMessage
	blob, err := os.ReadFile(path)
	switch {
	case err == nil && len(bytes.TrimSpace(blob)) > 0:
		trimmed := bytes.TrimSpace(blob)
		if trimmed[0] == '[' {
			if err := json.Unmarshal(trimmed, &entries); err != nil {
				return fmt.Errorf("loadgen: %s is not a valid benchmark array: %w", path, err)
			}
		} else {
			var legacy benchEntry
			if err := json.Unmarshal(trimmed, &legacy); err != nil {
				return fmt.Errorf("loadgen: %s is not a valid benchmark entry: %w", path, err)
			}
			entries = append(entries, json.RawMessage(trimmed))
		}
	case err != nil && !os.IsNotExist(err):
		return err
	}
	raw, err := json.Marshal(entry)
	if err != nil {
		return err
	}
	entries = append(entries, raw)
	blob, err = json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
