package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/protocol"
	"repro/internal/transport"
)

// TestServeOneSession boots the server on an ephemeral port, discovers
// the address through -addr-file, runs one client session against it,
// and checks the session report.
func TestServeOneSession(t *testing.T) {
	addrFile := filepath.Join(t.TempDir(), "addr")
	var out strings.Builder
	errc := make(chan error, 1)
	go func() {
		errc <- run(&out, "127.0.0.1:0", addrFile, 1, 30*time.Second, true)
	}()

	var addr string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); time.Sleep(10 * time.Millisecond) {
		if b, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(b))
			break
		}
	}
	if addr == "" {
		t.Fatal("server never wrote its address file")
	}

	p, err := protocol.ByName("gbn", 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := transport.Dial(addr, transport.ClientConfig{
		Protocol: p, ProtoName: "gbn", N: 8, W: 3, FIFO: true,
		Msgs: 25, Timeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdicts.Clean() {
		t.Fatalf("client verdicts: %s", res.Verdicts)
	}

	if err := <-errc; err != nil {
		t.Fatalf("server: %v\n%s", err, out.String())
	}
	for _, want := range []string{"listening on", "gbn n=8 w=3", "delivered 25", "DL^{t,r}: OK", "transport.msgs_delivered"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("server output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRejectsBadAddr(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "256.256.256.256:99999", "", 1, time.Second, false); err == nil {
		t.Fatal("bad address accepted")
	}
}
