package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// syncBuffer is a strings.Builder safe for the test goroutine to read
// while run() writes session lines from server goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitForFile polls until path exists and returns its trimmed content.
func waitForFile(t *testing.T, path string) string {
	t.Helper()
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); time.Sleep(10 * time.Millisecond) {
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return strings.TrimSpace(string(b))
		}
	}
	t.Fatalf("%s never appeared", path)
	return ""
}

func dialSession(t *testing.T, addr string, msgs int) *transport.ClientResult {
	t.Helper()
	p, err := protocol.ByName("gbn", 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := transport.Dial(addr, transport.ClientConfig{
		Protocol: p, ProtoName: "gbn", N: 8, W: 3, FIFO: true,
		Msgs: msgs, Timeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestServeOneSession boots the server on an ephemeral port, discovers
// the address through -addr-file, runs one client session against it,
// and checks the session report.
func TestServeOneSession(t *testing.T) {
	addrFile := filepath.Join(t.TempDir(), "addr")
	var out syncBuffer
	errc := make(chan error, 1)
	go func() {
		errc <- run(&out, options{addr: "127.0.0.1:0", addrFile: addrFile,
			sessions: 1, timeout: 30 * time.Second, metrics: true})
	}()
	addr := waitForFile(t, addrFile)

	res := dialSession(t, addr, 25)
	if !res.Verdicts.Clean() {
		t.Fatalf("client verdicts: %s", res.Verdicts)
	}

	if err := <-errc; err != nil {
		t.Fatalf("server: %v\n%s", err, out.String())
	}
	for _, want := range []string{"listening on", "gbn n=8 w=3", "delivered 25", "DL^{t,r}: OK", "transport.msgs_delivered"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("server output missing %q:\n%s", want, out.String())
		}
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("%s: %v", url, err)
	}
}

// TestServeAdminEndpoint serves two sessions with the admin plane up
// and scrapes /metrics, /healthz and /sessions mid-run — after the
// first session, before the second — pinning the payloads a live
// operator depends on.
func TestServeAdminEndpoint(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	adminFile := filepath.Join(dir, "admin")
	var out syncBuffer
	errc := make(chan error, 1)
	go func() {
		errc <- run(&out, options{addr: "127.0.0.1:0", addrFile: addrFile,
			admin: "127.0.0.1:0", adminFile: adminFile,
			sessions: 2, timeout: 30 * time.Second})
	}()
	addr := waitForFile(t, addrFile)
	admin := waitForFile(t, adminFile)

	// Before any session: healthz answers with zero sessions.
	var health struct {
		Status       string `json:"status"`
		Sessions     int    `json:"sessions"`
		Exit4Pending bool   `json:"exit4_pending"`
	}
	getJSON(t, "http://"+admin+"/healthz", &health)
	if health.Status != "ok" || health.Sessions != 0 || health.Exit4Pending {
		t.Fatalf("idle healthz = %+v", health)
	}

	dialSession(t, addr, 40)

	// /sessions lists completed sessions; the first may still be
	// settling into the health state when the client returns, so poll.
	var sessions []sessionInfo
	for deadline := time.Now().Add(10 * time.Second); ; time.Sleep(5 * time.Millisecond) {
		getJSON(t, "http://"+admin+"/sessions", &sessions)
		if len(sessions) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/sessions never listed the session: %+v", sessions)
		}
	}
	if s := sessions[0]; s.Delivered != 40 || !s.Clean || s.FramesIn == 0 || s.FramesOut == 0 || s.Goodput <= 0 {
		t.Fatalf("/sessions = %+v", s)
	}

	resp, err := http.Get("http://" + admin + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"transport.msgs_delivered 40", "transport.delivery_latency count=40"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
	getJSON(t, "http://"+admin+"/healthz", &health)
	if health.Sessions != 1 || health.Status != "ok" || health.Exit4Pending {
		t.Errorf("mid-run healthz = %+v", health)
	}

	dialSession(t, addr, 5)
	if err := <-errc; err != nil {
		t.Fatalf("server: %v\n%s", err, out.String())
	}
}

// TestSignaledServeFlushesArtifacts: a SIGINT mid-serve drains, flushes
// the trace (validating, with session events and a terminal metrics
// snapshot) and returns errInterrupted — the exit-3 contract.
func TestSignaledServeFlushesArtifacts(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	tracePath := filepath.Join(dir, "server.jsonl")
	var out syncBuffer
	errc := make(chan error, 1)
	go func() {
		errc <- run(&out, options{addr: "127.0.0.1:0", addrFile: addrFile,
			timeout: 30 * time.Second, metrics: false, tracePath: tracePath,
			snapshotEvery: 5 * time.Millisecond})
	}()
	addr := waitForFile(t, addrFile)
	dialSession(t, addr, 30)
	// Give the ticker a beat so at least one streamed snapshot lands.
	time.Sleep(25 * time.Millisecond)

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, errInterrupted) {
			t.Fatalf("run returned %v, want errInterrupted\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not stop after SIGINT")
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var v obs.Validator
	events := map[string]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		ev, err := v.Line(sc.Bytes())
		if err != nil {
			t.Fatalf("trace line invalid after SIGINT: %v", err)
		}
		events[ev]++
	}
	for _, want := range []string{"transport.session", "transport.event", "transport.seal", "metrics-snapshot", "metrics"} {
		if events[want] == 0 {
			t.Errorf("flushed trace has no %q events: %v", want, events)
		}
	}
}

func TestRunRejectsBadAddr(t *testing.T) {
	var out strings.Builder
	if err := run(&out, options{addr: "256.256.256.256:99999", sessions: 1, timeout: time.Second}); err == nil {
		t.Fatal("bad address accepted")
	}
}
