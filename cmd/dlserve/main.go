// Command dlserve hosts monitored data link receiver sessions over
// TCP. Each connection negotiates a protocol (Hello frame), runs the
// receiver station A^r against the remote transmitter, judges the live
// action stream with the online DL/PL monitors, and reports a verdict
// per session.
//
// With -admin the server also exposes a live telemetry plane over
// HTTP: /metrics (text or ?format=json rendering of the obs snapshot),
// /healthz (session and verdict tallies), /sessions (per-session
// goodput, frames and violations) and net/http/pprof under
// /debug/pprof/. Without the flag none of it exists and the serving
// path stays zero-cost.
//
// Exit codes: 0 clean, 1 harness error, 2 usage, 3 interrupted
// (SIGINT/SIGTERM; artifacts flushed), 4 some session's monitors
// signalled a specification violation.
//
// Examples:
//
//	dlserve -addr 127.0.0.1:4444
//	dlserve -addr 127.0.0.1:0 -addr-file /tmp/dlserve.addr -sessions 1
//	dlserve -admin 127.0.0.1:8080 -trace server.jsonl -snapshot-every 1s
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// errInterrupted marks a serve loop stopped by SIGINT/SIGTERM with all
// obs artifacts (trace, snapshot) flushed; main maps it to exit 3.
var errInterrupted = errors.New("interrupted")

// errViolation marks a run in which at least one session's monitors
// signalled a specification violation; main maps it to exit 4, the
// same finding-vs-failure split loadgen uses.
var errViolation = errors.New("monitor violation")

const (
	exitInterrupted = 3
	exitViolation   = 4
)

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:4444", "address to listen on (port 0 picks one)")
	flag.StringVar(&o.addrFile, "addr-file", "", "write the bound address to this file after listening")
	flag.IntVar(&o.sessions, "sessions", 0, "exit after this many sessions (0 = serve forever)")
	flag.DurationVar(&o.timeout, "timeout", 60*time.Second, "per-session deadline")
	flag.BoolVar(&o.metrics, "metrics", false, "print an obs snapshot as JSON on exit")
	flag.StringVar(&o.admin, "admin", "", "serve the admin telemetry endpoint on this address (port 0 picks one)")
	flag.StringVar(&o.adminFile, "admin-file", "", "write the bound admin address to this file")
	flag.StringVar(&o.tracePath, "trace", "", "write a JSONL trace of every session's event stream to this file")
	flag.DurationVar(&o.snapshotEvery, "snapshot-every", 0, "emit metrics-snapshot trace events at this interval (needs -trace)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "dlserve: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	switch err := run(os.Stdout, o); {
	case err == nil:
	case errors.Is(err, errInterrupted):
		os.Exit(exitInterrupted)
	case errors.Is(err, errViolation):
		fmt.Fprintln(os.Stderr, "dlserve:", err)
		os.Exit(exitViolation)
	default:
		fmt.Fprintln(os.Stderr, "dlserve:", err)
		os.Exit(1)
	}
}

type options struct {
	addr, addrFile   string
	sessions         int
	timeout          time.Duration
	metrics          bool
	admin, adminFile string
	tracePath        string
	snapshotEvery    time.Duration
}

// sessionInfo is the /sessions rendering of one completed session.
type sessionInfo struct {
	ID         int64   `json:"id"`
	Remote     string  `json:"remote"`
	Proto      string  `json:"proto"`
	N          int     `json:"n"`
	W          int     `json:"w"`
	FIFO       bool    `json:"fifo"`
	Delivered  int     `json:"delivered"`
	DurationMS float64 `json:"duration_ms"`
	Goodput    float64 `json:"goodput_msg_per_s"`
	FramesIn   int     `json:"frames_in"`
	FramesOut  int     `json:"frames_out"`
	Violations int     `json:"violations"`
	Verdict    string  `json:"verdict"`
	Clean      bool    `json:"clean"`
	Err        string  `json:"err,omitempty"`
}

// maxRetainedSessions bounds the /sessions list on a serve-forever
// process; the /healthz tallies keep counting past it.
const maxRetainedSessions = 256

// healthState aggregates completed sessions for /healthz and
// /sessions. The handlers only read this pre-aggregated state — they
// resolve no registry handles and touch no per-request instruments.
type healthState struct {
	mu         sync.Mutex
	recent     []sessionInfo
	total      int
	unclean    int
	violations int
	errors     int
}

// record folds one completed session into the tallies.
func (h *healthState) record(s transport.SessionSummary) {
	info := sessionInfo{
		ID: s.ID, Remote: s.Remote, Proto: s.Proto, N: s.N, W: s.W, FIFO: s.FIFO,
		Delivered: s.Delivered, DurationMS: float64(s.Duration.Microseconds()) / 1000,
		FramesIn: s.FramesIn, FramesOut: s.FramesOut, Violations: s.Violations,
		Verdict: s.Verdicts.String(), Clean: s.Verdicts.Clean(),
	}
	if secs := s.Duration.Seconds(); secs > 0 {
		info.Goodput = float64(s.Delivered) / secs
	}
	if s.Err != nil {
		info.Err = s.Err.Error()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.total++
	if !info.Clean {
		h.unclean++
	}
	h.violations += s.Violations
	if s.Err != nil {
		h.errors++
	}
	h.recent = append(h.recent, info)
	if len(h.recent) > maxRetainedSessions {
		h.recent = h.recent[len(h.recent)-maxRetainedSessions:]
	}
}

// exit4Pending reports whether the run will end with the violation
// exit code as things stand.
func (h *healthState) exit4Pending() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.unclean > 0
}

func (h *healthState) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	status := "ok"
	if h.unclean > 0 {
		status = "violations"
	}
	payload := map[string]any{
		"status":        status,
		"sessions":      h.total,
		"unclean":       h.unclean,
		"violations":    h.violations,
		"errors":        h.errors,
		"exit4_pending": h.unclean > 0,
	}
	h.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(payload)
}

func (h *healthState) handleSessions(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	sessions := make([]sessionInfo, len(h.recent))
	copy(sessions, h.recent)
	h.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(sessions)
}

func run(w io.Writer, o options) (err error) {
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(w, "dlserve: listening on %s (protocols: %v)\n", ln.Addr(), protocol.Names())
	if o.addrFile != "" {
		if err := os.WriteFile(o.addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
	}

	// The registry exists whenever anything consumes it; with neither
	// -metrics, -admin nor -snapshot-every the serving path keeps the
	// nil registry and its zero-cost instruments.
	var reg *obs.Registry
	if o.metrics || o.admin != "" || o.snapshotEvery > 0 {
		reg = obs.NewRegistry()
	}
	var tr *obs.Trace
	if o.tracePath != "" {
		tr, err = obs.OpenTrace(o.tracePath)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := tr.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
	}
	tick := obs.StartTicker(reg, tr, o.snapshotEvery)
	defer tick.Stop()

	hs := &healthState{}
	if o.admin != "" {
		mux := obs.AdminMux(reg)
		mux.HandleFunc("/healthz", hs.handleHealthz)
		mux.HandleFunc("/sessions", hs.handleSessions)
		adminSrv, err := obs.StartAdmin(o.admin, mux)
		if err != nil {
			return err
		}
		defer adminSrv.Close()
		fmt.Fprintf(w, "dlserve: admin endpoint on http://%s\n", adminSrv.Addr())
		if o.adminFile != "" {
			if err := os.WriteFile(o.adminFile, []byte(adminSrv.Addr()+"\n"), 0o644); err != nil {
				return err
			}
		}
	}

	// SIGINT/SIGTERM close the listener: Serve drains in-flight
	// sessions, then the normal teardown below flushes the trace and
	// snapshot — stopped, not lost.
	var interrupted atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		if _, ok := <-sigc; ok {
			fmt.Fprintln(w, "dlserve: signal received — draining sessions and flushing artifacts")
			interrupted.Store(true)
			ln.Close()
		}
	}()
	defer func() {
		signal.Stop(sigc)
		close(sigc)
	}()

	err = transport.Serve(ln, transport.ServerConfig{
		Resolve:        protocol.ByName,
		Registry:       reg,
		Trace:          tr,
		MaxSessions:    o.sessions,
		SessionTimeout: o.timeout,
		OnSession: func(s transport.SessionSummary) {
			hs.record(s)
			if s.Err != nil {
				fmt.Fprintf(w, "session %d %s: %s: error: %v\n", s.ID, s.Remote, s.Proto, s.Err)
				return
			}
			fmt.Fprintf(w, "session %d %s: %s n=%d w=%d fifo=%v: delivered %d in %v; %s\n",
				s.ID, s.Remote, s.Proto, s.N, s.W, s.FIFO, s.Delivered,
				s.Duration.Round(time.Millisecond), s.Verdicts)
		},
	})
	if err != nil {
		return err
	}
	// Final artifacts, on every graceful path: stop streaming, append a
	// terminal snapshot to the trace, print the exit snapshot.
	tick.Stop()
	if reg != nil {
		tr.Emit("metrics", obs.JSON("snapshot", reg.Snapshot()))
	}
	if o.metrics {
		if err := reg.Snapshot().WriteJSON(w); err != nil {
			return err
		}
	}
	if interrupted.Load() {
		return errInterrupted
	}
	if hs.exit4Pending() {
		return fmt.Errorf("%w: %d of %d sessions unclean", errViolation, hs.unclean, hs.total)
	}
	return nil
}
