// Command dlserve hosts monitored data link receiver sessions over
// TCP. Each connection negotiates a protocol (Hello frame), runs the
// receiver station A^r against the remote transmitter, judges the live
// action stream with the online DL/PL monitors, and reports a verdict
// per session.
//
// Examples:
//
//	dlserve -addr 127.0.0.1:4444
//	dlserve -addr 127.0.0.1:0 -addr-file /tmp/dlserve.addr -sessions 1
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/transport"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:4444", "address to listen on (port 0 picks one)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file after listening")
		sessions = flag.Int("sessions", 0, "exit after this many sessions (0 = serve forever)")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-session deadline")
		metrics  = flag.Bool("metrics", false, "print an obs snapshot as JSON on exit")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "dlserve: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *addr, *addrFile, *sessions, *timeout, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "dlserve:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, addr, addrFile string, sessions int, timeout time.Duration, metrics bool) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(w, "dlserve: listening on %s (protocols: %v)\n", ln.Addr(), protocol.Names())
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
	}
	var reg *obs.Registry
	if metrics {
		reg = obs.NewRegistry()
	}
	err = transport.Serve(ln, transport.ServerConfig{
		Resolve:        protocol.ByName,
		Registry:       reg,
		MaxSessions:    sessions,
		SessionTimeout: timeout,
		OnSession: func(s transport.SessionSummary) {
			if s.Err != nil {
				fmt.Fprintf(w, "session %s: %s: error: %v\n", s.Remote, s.Proto, s.Err)
				return
			}
			fmt.Fprintf(w, "session %s: %s n=%d w=%d fifo=%v: delivered %d; %s\n",
				s.Remote, s.Proto, s.N, s.W, s.FIFO, s.Delivered, s.Verdicts)
		},
	})
	if err != nil {
		return err
	}
	if metrics {
		return reg.Snapshot().WriteJSON(w)
	}
	return nil
}
