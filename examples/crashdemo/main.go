// Crashdemo: the paper's Section 7, live.
//
// Part 1 runs the Theorem 7.5 adversary against the alternating-bit
// protocol: because ABP is message-independent and crashing (a crash
// resets it to its start state), the crash pump mechanically constructs a
// schedule of crashes and replays after which the system is in a state
// equivalent to "everything delivered" while a freshly accepted message is
// still outstanding — and then exhibits the WDL violation.
//
// Part 2 runs the same adversary against the Baratz–Segall-style protocol
// with non-volatile memory: the hypothesis check rejects it (it is not
// crashing), and a randomized crash/loss torture run shows it actually
// delivering correctly — Theorem 7.5 is tight.
//
//	go run ./examples/crashdemo
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/spec"
)

func main() {
	part1()
	part2()
}

func part1() {
	fmt.Println("── Part 1: Theorem 7.5 defeats the alternating-bit protocol ──")
	rep, err := adversary.CrashPump(protocol.NewABP(), adversary.CrashPumpConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)
	fmt.Println("\nthe constructed behavior (crashes and replays included):")
	fmt.Print(ioa.FormatSchedule(rep.Behavior))
	fmt.Println()
}

func part2() {
	fmt.Println("── Part 2: non-volatile memory escapes the theorem ──")
	nv := protocol.NewNonVolatile()
	_, err := adversary.CrashPump(nv, adversary.CrashPumpConfig{})
	if !errors.Is(err, adversary.ErrHypothesisRejected) {
		log.Fatalf("expected hypothesis rejection, got: %v", err)
	}
	fmt.Printf("crash pump rejects %s: %v\n\n", nv.Name, err)

	fmt.Println("torture run: 25 random crash/recovery events interleaved with traffic…")
	sys, err := core.NewSystem(nv, true)
	if err != nil {
		log.Fatal(err)
	}
	run := sim.NewRunner(sys)
	if err := run.WakeBoth(); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	sent := 0
	for i := 0; i < 25; i++ {
		switch rng.Intn(4) {
		case 0:
			dir := ioa.TR
			if rng.Intn(2) == 0 {
				dir = ioa.RT
			}
			if err := run.Input(ioa.Crash(dir)); err != nil {
				log.Fatal(err)
			}
			if err := run.Input(ioa.Wake(dir)); err != nil {
				log.Fatal(err)
			}
		case 1:
			sent++
			if err := run.Input(ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("m%d", sent)))); err != nil {
				log.Fatal(err)
			}
		default:
			if _, err := run.RunFair(sim.RunConfig{MaxSteps: 30, Rand: rng}); err != nil && !errors.Is(err, sim.ErrStepLimit) {
				log.Fatal(err)
			}
		}
	}
	if _, err := run.RunFair(sim.RunConfig{}); err != nil {
		log.Fatal(err)
	}
	beh := run.Behavior()
	delivered := 0
	for _, a := range beh {
		if a.Kind == ioa.KindReceiveMsg {
			delivered++
		}
	}
	fmt.Printf("sent %d messages through the chaos, delivered %d (losses excused only by crashes)\n", sent, delivered)
	fmt.Printf("DL verdict on the full behavior: %s\n", spec.CheckDL(beh, ioa.TR))
}
