// Modelcheck: the impossibility theorems, rediscovered by exhaustive
// search — and footnote 1 made precise.
//
// Part 1 asks the bounded model checker to find a safety violation for
// Go-Back-N mod 2 over the arbitrarily-reordering channel C̄. It finds the
// shortest one: the wrap-around duplicate delivery that Theorem 8.5
// generalises to every bounded-header protocol.
//
// Part 2 re-runs the same search with the footnote-1 assumption — packets
// expire after a bounded number of subsequent sends — and maps where the
// bug disappears: bounded headers become safe exactly when the sequence
// modulus outlives the packet lifetime.
//
//	go run ./examples/modelcheck
package main

import (
	"fmt"
	"log"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/ioa"
	"repro/internal/protocol"
)

func main() {
	part1()
	part2()
}

func inputs(msgs int) []ioa.Action {
	out := []ioa.Action{ioa.Wake(ioa.TR), ioa.Wake(ioa.RT)}
	for i := 0; i < msgs; i++ {
		out = append(out, ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("m%d", i+1))))
	}
	return out
}

func part1() {
	fmt.Println("── Part 1: search rediscovers the Theorem 8.5 bug ──")
	sys, err := core.NewSystem(protocol.NewGoBackN(2, 1), false)
	if err != nil {
		log.Fatal(err)
	}
	res, err := explore.BFS(sys, explore.Config{
		Inputs:       inputs(3),
		Monitor:      explore.NewSafetyMonitor(false),
		MaxDepth:     26,
		MaxInTransit: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Violation == nil {
		log.Fatal("expected a violation")
	}
	fmt.Printf("explored %d states; %s\nshortest trace (%d steps):\n%s\n",
		res.StatesExplored, res.Violation, len(res.Trace), ioa.FormatSchedule(res.Trace))
}

func part2() {
	fmt.Println("── Part 2: bounded packet lifetime restores safety (footnote 1) ──")
	fmt.Println("gbn(n,1) over C̄ with packets expiring after L subsequent sends:")
	fmt.Printf("%-8s", "n\\L")
	lifetimes := []int{1, 2, 3}
	for _, l := range lifetimes {
		fmt.Printf("%10d", l)
	}
	fmt.Println()
	for _, n := range []int{2, 3} {
		fmt.Printf("%-8d", n)
		for _, l := range lifetimes {
			sys, err := core.NewSystem(protocol.NewGoBackN(n, 1), false,
				core.WithChannelOptions(channel.WithMaxLifetime(l)))
			if err != nil {
				log.Fatal(err)
			}
			res, err := explore.BFS(sys, explore.Config{
				Inputs:       inputs(n + 1),
				Monitor:      explore.NewSafetyMonitor(false),
				MaxDepth:     6*(n+1) + 4,
				MaxInTransit: l + 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			switch {
			case res.Violation != nil:
				fmt.Printf("%10s", "UNSAFE")
			case res.Exhausted:
				fmt.Printf("%10s", "safe")
			default:
				fmt.Printf("%10s", "?")
			}
		}
		fmt.Println()
	}
	fmt.Println("\nreading the table: stale packets must survive long enough for the sequence")
	fmt.Println("space to wrap; once n > L they cannot, and the bounded headers are safe —")
	fmt.Println("the timing assumption footnote 1 says rescues bounded headers.")
}
