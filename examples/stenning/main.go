// Stenning: the paper's Section 8, live.
//
// Part 1 runs the Theorem 8.5 adversary against Go-Back-N (bounded
// headers) over the arbitrarily-reordering channel C̄: the header pump
// withholds one packet per sequence-number class, and once the classes
// wrap around it replays the receiver against the stale packets, forcing
// a duplicate delivery.
//
// Part 2 runs Stenning's protocol — the same ARQ idea but with unbounded
// absolute sequence numbers — over the same hostile channel: it stays
// correct, at the cost of headers that grow with the number of messages
// (which Theorem 8.5 proves is the price of non-FIFO channels).
//
//	go run ./examples/stenning
package main

import (
	"fmt"
	"log"

	"repro/internal/adversary"
	"repro/internal/ioa"
	"repro/internal/perf"
	"repro/internal/protocol"
)

func main() {
	part1()
	part2()
}

func part1() {
	fmt.Println("── Part 1: Theorem 8.5 defeats bounded headers over C̄ ──")
	gbn := protocol.NewGoBackN(4, 1)
	rep, err := adversary.HeaderPump(gbn, adversary.HeaderPumpConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)
	fmt.Println("\nstale packets the channel held back (the set T):")
	for i, p := range rep.Withheld {
		fmt.Printf("  %2d. %s\n", i+1, p)
	}
	fmt.Println("\nviolating data link behavior (note the duplicate delivery at the end):")
	fmt.Print(ioa.FormatSchedule(rep.Behavior))
	fmt.Println()
}

func part2() {
	fmt.Println("── Part 2: Stenning's unbounded headers survive C̄ ──")
	for _, n := range []int{10, 100, 1000} {
		res, err := perf.MeasureStenningHeaderGrowth(n, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", res)
	}
	fmt.Println("\nheaders grow linearly with the message count — by Theorem 8.5, no bounded")
	fmt.Println("header set can work at all, so this growth is the unavoidable price of")
	fmt.Println("reliable transfer over channels that may reorder packets arbitrarily.")
}
