// Stenning: the paper's Section 8, live.
//
// Part 1 runs the Theorem 8.5 adversary against Go-Back-N (bounded
// headers) over the arbitrarily-reordering channel C̄: the header pump
// withholds one packet per sequence-number class, and once the classes
// wrap around it replays the receiver against the stale packets, forcing
// a duplicate delivery.
//
// Part 2 runs Stenning's protocol — the same ARQ idea but with unbounded
// absolute sequence numbers — over the same hostile channel: it stays
// correct, at the cost of headers that grow with the number of messages
// (which Theorem 8.5 proves is the price of non-FIFO channels).
//
//	go run ./examples/stenning
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/adversary"
	"repro/internal/ioa"
	"repro/internal/perf"
	"repro/internal/protocol"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	if err := part1(out); err != nil {
		return err
	}
	return part2(out)
}

func part1(out io.Writer) error {
	fmt.Fprintln(out, "── Part 1: Theorem 8.5 defeats bounded headers over C̄ ──")
	gbn := protocol.NewGoBackN(4, 1)
	rep, err := adversary.HeaderPump(gbn, adversary.HeaderPumpConfig{})
	if err != nil {
		return err
	}
	fmt.Fprint(out, rep)
	fmt.Fprintln(out, "\nstale packets the channel held back (the set T):")
	for i, p := range rep.Withheld {
		fmt.Fprintf(out, "  %2d. %s\n", i+1, p)
	}
	fmt.Fprintln(out, "\nviolating data link behavior (note the duplicate delivery at the end):")
	fmt.Fprint(out, ioa.FormatSchedule(rep.Behavior))
	fmt.Fprintln(out)
	return nil
}

func part2(out io.Writer) error {
	fmt.Fprintln(out, "── Part 2: Stenning's unbounded headers survive C̄ ──")
	for _, n := range []int{10, 100, 1000} {
		res, err := perf.MeasureStenningHeaderGrowth(n, 3)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  %s\n", res)
	}
	fmt.Fprintln(out, "\nheaders grow linearly with the message count — by Theorem 8.5, no bounded")
	fmt.Fprintln(out, "header set can work at all, so this growth is the unavoidable price of")
	fmt.Fprintln(out, "reliable transfer over channels that may reorder packets arbitrarily.")
	return nil
}
