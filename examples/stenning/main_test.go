package main

import (
	"strings"
	"testing"
)

// TestStenningOutput runs both parts end to end and asserts the story
// the example tells: part 1 exhibits a concrete violating behavior with
// the withheld set T, part 2 shows Stenning paying for correctness with
// growing headers.
func TestStenningOutput(t *testing.T) {
	var out strings.Builder
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"── Part 1",
		"the set T",
		"violating data link behavior",
		"receive_msg", // the duplicate delivery is shown in the printed schedule
		"── Part 2",
		"headers grow linearly",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}

	// The withheld set is non-empty: at least one numbered "  1. ..." line
	// between the set-T header and the behavior header.
	p1 := text[strings.Index(text, "the set T"):strings.Index(text, "violating data link behavior")]
	if !strings.Contains(p1, " 1. ") {
		t.Fatalf("no withheld packets listed:\n%s", p1)
	}

	// Part 2 prints one measurement line per message count.
	p2 := text[strings.Index(text, "── Part 2"):]
	for _, n := range []string{"10", "100", "1000"} {
		if !strings.Contains(p2, n) {
			t.Errorf("part 2 missing measurement for n=%s:\n%s", n, p2)
		}
	}
}
