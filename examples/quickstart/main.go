// Quickstart: compose a Go-Back-N sliding window protocol with a pair of
// lossy FIFO physical channels, send a batch of messages, let the system
// run fairly to quiescence, and check the observed behavior against the
// paper's data link layer specification (DL1)-(DL8).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/spec"
)

func main() {
	// 1. A data link protocol is a pair (A^t, A^r) of I/O automata.
	p := protocol.NewGoBackN(8, 3)

	// 2. Compose it with FIFO physical channels Ĉ^{t,r} and Ĉ^{r,t} into
	//    the system D'(A) = hide_Φ(A^t ∥ A^r ∥ Ĉ^{t,r} ∥ Ĉ^{r,t}).
	//    WithLoss lets the scheduler drop packets, exercising
	//    retransmission.
	sys, err := core.NewSystem(p, true, core.WithChannelOptions(channel.WithLoss()))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Drive it: wake both stations, submit ten messages.
	run := sim.NewRunner(sys)
	if err := run.WakeBoth(); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := run.Input(ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("hello-%d", i)))); err != nil {
			log.Fatal(err)
		}
	}

	// 4. Random scheduling with loss, then a deterministic fair run so the
	//    system settles (Lemma 2.1's fair extension).
	rng := rand.New(rand.NewSource(42))
	if _, err := run.RunFair(sim.RunConfig{MaxSteps: 2000, Rand: rng, AllowLoss: true}); err != nil {
		log.Fatal(err)
	}
	quiescent, err := run.RunFair(sim.RunConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Inspect the data link behavior (send_msg/receive_msg events; the
	//    packet traffic is hidden, as in the paper's correctness
	//    definition) and check it against the DL specification.
	beh := run.Behavior()
	fmt.Println("observed data link behavior:")
	fmt.Print(ioa.FormatSchedule(beh))
	fmt.Printf("quiescent: %t\n", quiescent)
	fmt.Printf("DL verdict: %s\n", spec.CheckDL(beh, ioa.TR))

	// 6. The physical-layer traffic is still checkable against PL-FIFO.
	for _, d := range []ioa.Dir{ioa.TR, ioa.RT} {
		ps := run.PacketSchedule(d)
		fmt.Printf("PL-FIFO^{%s} verdict over %d packet events: %s\n", d, len(ps), spec.CheckPLFIFO(ps, d))
	}
}
