// Windowsweep: why the data link layer bothers with sliding windows.
//
// The protocols the paper's introduction names — HDLC, SDLC, LAPB — are
// all sliding-window ARQ protocols. This example regenerates the
// motivating trade-off on a discrete-time lossy link: stop-and-wait
// (window 1, i.e. the alternating-bit protocol's behaviour) wastes the
// pipe, larger windows saturate it, and loss pulls the whole curve down.
// The window size is bounded by the sequence-number modulus (w ≤ n-1) —
// and Theorem 8.5 is exactly the statement that no such bounded modulus
// can survive a non-FIFO channel.
//
//	go run ./examples/windowsweep
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/perf"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	const (
		delay = 10 // one-way latency in ticks; RTT = 20
		ticks = 40000
	)
	windows := []int{1, 2, 4, 8, 16, 32, 64}
	losses := []float64{0, 0.02, 0.1}

	fmt.Fprintf(out, "Go-Back-N goodput on a unit-capacity link, one-way delay %d (RTT %d):\n\n", delay, 2*delay)
	fmt.Fprintf(out, "%-8s", "loss\\W")
	for _, w := range windows {
		fmt.Fprintf(out, "%8d", w)
	}
	fmt.Fprintln(out)
	for _, p := range losses {
		fmt.Fprintf(out, "%-8.2f", p)
		for _, w := range windows {
			r, err := perf.SimulateGoodput(perf.GoodputConfig{
				Window: w, Delay: delay, Loss: p, Ticks: ticks, Seed: 99,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%8.4f", r.Goodput)
		}
		fmt.Fprintln(out)
	}

	fmt.Fprintln(out, "\nreading the table:")
	fmt.Fprintf(out, "  • W=1 is stop-and-wait: goodput ≈ 1/RTT = %.4f no matter how fast the link is.\n", 1.0/(2*delay))
	fmt.Fprintln(out, "  • goodput saturates once W covers the bandwidth-delay product (W ≈ RTT).")
	fmt.Fprintln(out, "  • under loss, Go-Back-N resends the whole window, so very large windows stop paying.")
	return nil
}
