package main

import (
	"strconv"
	"strings"
	"testing"
)

// TestWindowsweepOutput runs the example end to end and asserts the
// qualitative invariants the prose claims: every goodput is a valid
// rate, the lossless curve rises from stop-and-wait to saturation, and
// loss only ever pulls a column down.
func TestWindowsweepOutput(t *testing.T) {
	var out strings.Builder
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"loss\\W", "stop-and-wait", "bandwidth-delay"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}

	rows := [][]float64{}
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 8 || !strings.Contains(fields[0], ".") {
			continue
		}
		row := []float64{}
		for _, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				t.Fatalf("bad goodput cell %q in %q", f, line)
			}
			if v < 0 || v > 1 {
				t.Fatalf("goodput %v out of range in %q", v, line)
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 loss rows, found %d:\n%s", len(rows), text)
	}
	lossless := rows[0]
	// Stop-and-wait wastes the pipe; saturation beats it by far.
	if lossless[len(lossless)-1] < 5*lossless[0] {
		t.Errorf("no window win on a clean link: %v", lossless)
	}
	// The lossless curve never decreases with window size.
	for i := 1; i < len(lossless); i++ {
		if lossless[i] < lossless[i-1]-1e-9 {
			t.Errorf("lossless goodput fell at W index %d: %v", i, lossless)
		}
	}
	// Loss pulls every saturated column down.
	if rows[2][len(rows[2])-1] >= lossless[len(lossless)-1] {
		t.Errorf("10%% loss did not reduce saturated goodput: %v vs %v", rows[2], lossless)
	}
}
